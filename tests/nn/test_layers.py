"""Layer modules: shapes, parameter traversal, state dicts, gradients."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradient
from repro.nn.layers import (
    MLP,
    Activation,
    Dropout,
    Embedding,
    Linear,
    Module,
    Parameter,
    Sequential,
)
from repro.nn.tensor import Tensor


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_bad_dims_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_gradcheck(self):
        layer = Linear(3, 2, rng=0)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
        check_gradient(lambda: (layer(x) ** 2.0).sum(), layer.parameters())

    def test_deterministic_init(self):
        a = Linear(4, 3, rng=42)
        b = Linear(4, 3, rng=42)
        assert np.allclose(a.weight.data, b.weight.data)


class TestActivation:
    def test_known_names(self):
        for name in ("relu", "leaky_relu", "tanh", "sigmoid", "identity"):
            Activation(name)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            Activation("swish")

    def test_identity_passthrough(self):
        x = Tensor(np.array([-1.0, 2.0]))
        assert np.allclose(Activation("identity")(x).data, x.data)


class TestMLP:
    def test_shapes_through_hidden(self):
        mlp = MLP(6, (8, 4), 2, rng=0)
        out = mlp(Tensor(np.ones((3, 6))))
        assert out.shape == (3, 2)

    def test_gradcheck(self):
        mlp = MLP(3, (4,), 1, activation="tanh", rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 3)))
        check_gradient(lambda: (mlp(x) ** 2.0).sum(), mlp.parameters())

    def test_output_activation(self):
        mlp = MLP(3, (4,), 2, output_activation="sigmoid", rng=0)
        out = mlp(Tensor(np.random.default_rng(0).normal(size=(10, 3)) * 5))
        assert np.all((out.data > 0) & (out.data < 1))

    def test_parameter_count(self):
        mlp = MLP(3, (4,), 2, rng=0)
        # two Linear layers, each weight+bias
        assert len(mlp.parameters()) == 4


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=0)
        out = emb(np.array([1, 3, 3]))
        assert out.shape == (3, 4)

    def test_out_of_range_raises(self):
        emb = Embedding(10, 4, rng=0)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_on_duplicates(self):
        emb = Embedding(5, 2, rng=0)
        out = emb(np.array([2, 2])).sum()
        out.backward()
        grad = emb.weight.grad
        assert np.allclose(grad[2], [2.0, 2.0])
        assert np.allclose(grad[[0, 1, 3, 4]], 0.0)


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.5, rng=0)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        assert np.allclose(drop(x).data, 1.0)

    def test_training_scales_kept_units(self):
        drop = Dropout(0.5, rng=0)
        x = Tensor(np.ones((2000,)))
        out = drop(x).data
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)  # inverted dropout scaling
        assert 0.3 < len(kept) / 2000 < 0.7

    def test_rate_zero_identity(self):
        drop = Dropout(0.0)
        x = Tensor(np.ones(5))
        assert drop(x) is x

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestModuleTraversal:
    def test_nested_named_parameters(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 2, rng=0)
                self.blocks = [Linear(2, 2, rng=1), Linear(2, 2, rng=2)]
                self.table = {"x": Linear(2, 2, rng=3)}

        names = [n for n, _ in Net().named_parameters()]
        assert "a.weight" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert "table.x.weight" in names

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2, rng=0), Dropout(0.5))
        seq.eval()
        assert not seq.layers[1].training
        seq.train()
        assert seq.layers[1].training

    def test_zero_grad_clears_all(self):
        mlp = MLP(2, (3,), 1, rng=0)
        (mlp(Tensor(np.ones((2, 2)))) ** 2.0).sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a = MLP(3, (4,), 2, rng=0)
        b = MLP(3, (4,), 2, rng=99)
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3)))
        assert np.allclose(a(x).data, b(x).data)

    def test_missing_key_raises(self):
        a = MLP(3, (4,), 2, rng=0)
        state = a.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        a = MLP(3, (4,), 2, rng=0)
        state = a.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_state_dict_is_copy(self):
        a = Linear(2, 2, rng=0)
        state = a.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(a.weight.data, 0.0)


class TestParameter:
    def test_requires_grad(self):
        p = Parameter(np.ones(3))
        assert p.requires_grad
