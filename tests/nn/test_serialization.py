"""Module save/load round-trips."""

import numpy as np

from repro.nn.layers import MLP
from repro.nn.serialization import load_module, save_module
from repro.nn.tensor import Tensor


def test_roundtrip(tmp_path):
    a = MLP(4, (6,), 2, rng=0)
    b = MLP(4, (6,), 2, rng=1)
    path = tmp_path / "model.npz"
    save_module(a, path)
    load_module(b, path)
    x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
    assert np.allclose(a(x).data, b(x).data)


def test_dotted_names_survive(tmp_path):
    a = MLP(2, (3, 3), 1, rng=0)
    path = tmp_path / "deep.npz"
    save_module(a, path)
    with np.load(path) as archive:
        assert all("." not in k for k in archive.files)
    b = MLP(2, (3, 3), 1, rng=5)
    load_module(b, path)
    assert np.allclose(a.state_dict()["net.layers.0.weight"], b.state_dict()["net.layers.0.weight"])
