"""Autograd engine: forward values, gradients, and graph mechanics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.gradcheck import check_gradient
from repro.nn.tensor import Tensor, concat, is_grad_enabled, no_grad, stack, where


def _param(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) * scale, requires_grad=True)


# ----------------------------------------------------------------------
# Forward values
# ----------------------------------------------------------------------
class TestForward:
    def test_add_matches_numpy(self):
        a, b = _param((3, 4)), _param((3, 4), seed=1)
        assert np.allclose((a + b).data, a.data + b.data)

    def test_scalar_broadcast(self):
        a = _param((2, 3))
        assert np.allclose((a + 1.5).data, a.data + 1.5)
        assert np.allclose((2.0 * a).data, 2.0 * a.data)

    def test_matmul_matches_numpy(self):
        a, b = _param((3, 4)), _param((4, 5), seed=1)
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_unsupported_matmul_dims_raise(self):
        a = _param((2, 3, 4))
        b = _param((4,))
        with pytest.raises(ValueError):
            a @ b

    def test_sigmoid_extreme_values_stable(self):
        t = Tensor(np.array([-1000.0, 0.0, 1000.0]))
        out = t.sigmoid().data
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0, abs=1e-12)

    def test_reshape_and_transpose(self):
        a = _param((2, 6))
        assert (a.reshape(3, 4)).shape == (3, 4)
        assert (a.T).shape == (6, 2)

    def test_concat_and_stack(self):
        a, b = _param((2, 3)), _param((2, 2), seed=1)
        assert concat([a, b], axis=1).shape == (2, 5)
        c = _param((2, 3), seed=2)
        assert stack([a, c], axis=0).shape == (2, 2, 3)

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat([])

    def test_where_selects(self):
        cond = np.array([True, False, True])
        a, b = Tensor(np.ones(3)), Tensor(np.zeros(3))
        assert np.allclose(where(cond, a, b).data, [1, 0, 1])

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(_param((2,)))


# ----------------------------------------------------------------------
# Gradients: numeric checks per op
# ----------------------------------------------------------------------
class TestGradients:
    def test_add_broadcast(self):
        a, b = _param((3, 4)), _param((4,), seed=1)
        check_gradient(lambda: (a + b).sum(), [a, b])

    def test_sub_and_neg(self):
        a, b = _param((3, 3)), _param((3, 3), seed=1)
        check_gradient(lambda: (a - b).sum(), [a, b])
        check_gradient(lambda: (-a).sum(), [a])

    def test_mul_broadcast(self):
        a, b = _param((2, 3)), _param((1, 3), seed=1)
        check_gradient(lambda: (a * b).sum(), [a, b])

    def test_div(self):
        a = _param((2, 3))
        b = Tensor(np.random.default_rng(1).uniform(0.5, 2.0, (2, 3)), requires_grad=True)
        check_gradient(lambda: (a / b).sum(), [a, b])

    def test_pow(self):
        a = Tensor(np.random.default_rng(0).uniform(0.5, 2.0, (4,)), requires_grad=True)
        check_gradient(lambda: (a**3.0).sum(), [a])

    def test_matmul_2d(self):
        a, b = _param((3, 4)), _param((4, 2), seed=1)
        check_gradient(lambda: (a @ b).sum(), [a, b])

    def test_matmul_vec(self):
        a, b = _param((3, 4)), _param((4,), seed=1)
        check_gradient(lambda: (a @ b).sum(), [a, b])
        c, d = _param((4,)), _param((4, 3), seed=1)
        check_gradient(lambda: (c @ d).sum(), [c, d])
        e, f = _param((5,)), _param((5,), seed=1)
        check_gradient(lambda: e @ f, [e, f])

    def test_matmul_batched(self):
        a, b = _param((2, 3, 4)), _param((2, 4, 2), seed=1)
        check_gradient(lambda: (a @ b).sum(), [a, b])

    def test_sum_axes(self):
        a = _param((3, 4, 2))
        check_gradient(lambda: a.sum(), [a])
        check_gradient(lambda: a.sum(axis=1).sum(), [a])
        check_gradient(lambda: a.sum(axis=(0, 2)).sum(), [a])
        check_gradient(lambda: a.sum(axis=1, keepdims=True).sum(), [a])

    def test_mean(self):
        a = _param((3, 4))
        check_gradient(lambda: a.mean(), [a])
        check_gradient(lambda: a.mean(axis=0).sum(), [a])

    def test_max(self):
        a = _param((3, 5))
        check_gradient(lambda: a.max(axis=1).sum(), [a])

    def test_max_with_ties_splits_gradient(self):
        a = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        assert np.allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_exp_log(self):
        a = Tensor(np.random.default_rng(0).uniform(0.5, 2.0, (3, 3)), requires_grad=True)
        check_gradient(lambda: a.exp().sum(), [a])
        check_gradient(lambda: a.log().sum(), [a])

    def test_tanh_sigmoid(self):
        a = _param((2, 3))
        check_gradient(lambda: a.tanh().sum(), [a])
        check_gradient(lambda: a.sigmoid().sum(), [a])

    def test_relu_leaky_relu(self):
        a = _param((4, 4))
        a.data += 0.1 * np.sign(a.data)  # keep away from the kink
        check_gradient(lambda: a.relu().sum(), [a])
        check_gradient(lambda: a.leaky_relu().sum(), [a])

    def test_abs_and_clip(self):
        a = _param((3, 3))
        a.data += 0.2 * np.sign(a.data)
        check_gradient(lambda: a.abs().sum(), [a])
        b = Tensor(np.array([0.2, 0.6, 0.9]), requires_grad=True)
        check_gradient(lambda: b.clip(0.3, 0.8).sum(), [b])

    def test_reshape_transpose(self):
        a = _param((2, 6))
        check_gradient(lambda: (a.reshape(3, 4) ** 2.0).sum(), [a])
        check_gradient(lambda: (a.T ** 2.0).sum(), [a])
        b = _param((2, 3, 4))
        check_gradient(lambda: (b.transpose((2, 0, 1)) ** 2.0).sum(), [b])

    def test_getitem_and_gather_rows(self):
        a = _param((5, 3))
        check_gradient(lambda: (a[1:4] ** 2.0).sum(), [a])
        idx = np.array([0, 2, 2, 4])
        check_gradient(lambda: (a.gather_rows(idx) ** 2.0).sum(), [a])

    def test_gather_duplicates_accumulate(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        a.gather_rows(np.array([1, 1, 1])).sum().backward()
        assert np.allclose(a.grad, [[0, 0], [3, 3], [0, 0]])

    def test_concat_gradient(self):
        a, b = _param((2, 3)), _param((2, 2), seed=1)
        check_gradient(lambda: (concat([a, b], axis=1) ** 2.0).sum(), [a, b])

    def test_stack_gradient(self):
        a, b = _param((2, 3)), _param((2, 3), seed=1)
        check_gradient(lambda: (stack([a, b]) ** 2.0).sum(), [a, b])

    def test_where_gradient(self):
        cond = np.random.default_rng(3).random((3, 4)) > 0.5
        a, b = _param((3, 4)), _param((3, 4), seed=1)
        check_gradient(lambda: where(cond, a, b).sum(), [a, b])

    def test_diamond_graph_accumulates(self):
        # y = a*a + a*a reuses `a` twice; grad must be 4a.
        a = _param((3,))
        ((a * a) + (a * a)).sum().backward()
        assert np.allclose(a.grad, 4 * a.data)

    def test_chain_composition(self):
        a = _param((4, 4), scale=0.5)
        b = _param((4, 4), seed=1, scale=0.5)
        check_gradient(lambda: ((a @ b).tanh().sigmoid()).sum(), [a, b])


# ----------------------------------------------------------------------
# Graph mechanics
# ----------------------------------------------------------------------
class TestMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_backward_nonscalar_needs_gradient(self):
        a = _param((3,))
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_explicit_gradient(self):
        a = _param((3,))
        (a * 2).backward(np.ones(3))
        assert np.allclose(a.grad, 2 * np.ones(3))

    def test_no_grad_blocks_recording(self):
        a = _param((3,))
        with no_grad():
            assert not is_grad_enabled()
            out = a * 2
        assert is_grad_enabled()
        assert not out.requires_grad

    def test_detach_cuts_graph(self):
        a = _param((3,))
        out = a.detach() * 2
        assert not out.requires_grad

    def test_zero_grad(self):
        a = _param((3,))
        (a * 2).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_repeated_backward_accumulates(self):
        a = _param((3,))
        (a * 2).sum().backward()
        first = a.grad.copy()
        loss = (a * 2).sum()
        loss.backward()
        assert np.allclose(a.grad, 2 * first)


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
@st.composite
def small_arrays(draw):
    shape = draw(st.sampled_from([(2, 3), (4,), (3, 2, 2)]))
    values = draw(
        st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=int(np.prod(shape)),
            max_size=int(np.prod(shape)),
        )
    )
    return np.array(values).reshape(shape)


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(small_arrays())
    def test_add_commutes(self, arr):
        a, b = Tensor(arr), Tensor(arr[::-1].copy())
        assert np.allclose((a + b).data, (b + a).data)

    @settings(max_examples=30, deadline=None)
    @given(small_arrays())
    def test_sum_equals_numpy(self, arr):
        assert Tensor(arr).sum().item() == pytest.approx(arr.sum(), rel=1e-9, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(small_arrays())
    def test_grad_of_sum_is_ones(self, arr):
        t = Tensor(arr, requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, np.ones_like(arr))

    @settings(max_examples=30, deadline=None)
    @given(small_arrays())
    def test_sigmoid_bounded(self, arr):
        out = Tensor(arr).sigmoid().data
        assert np.all((out > 0) & (out < 1))


# ----------------------------------------------------------------------
# Gradient-buffer ownership and the fused subtract node
# ----------------------------------------------------------------------
class TestAccumulateOwnership:
    def test_sub_is_a_single_node(self):
        a, b = _param((3, 3)), _param((3, 3), seed=1)
        out = a - b
        assert out._parents == (a, b)

    def test_rsub_gradcheck(self):
        a = _param((2, 3))
        check_gradient(lambda: (1.5 - a).sum(), [a])

    def test_rsub_value(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        assert np.allclose((5.0 - a).data, [4.0, 3.0])

    def test_sub_broadcast_gradcheck(self):
        a, b = _param((3, 4)), _param((4,), seed=1)
        check_gradient(lambda: (a - b).sum(), [a, b])

    def test_sibling_gradients_not_aliased(self):
        # When _unbroadcast is the identity (same shapes), both parents
        # of a + b receive the *same* incoming array; adopting it as a
        # gradient buffer for both would let one parent's later
        # accumulation corrupt the other.
        a, b = _param((4,)), _param((4,), seed=1)
        c = a + b
        f = a * 3.0
        (c.sum() + f.sum()).backward()
        assert np.allclose(b.grad, np.ones(4))
        assert np.allclose(a.grad, 4.0 * np.ones(4))

    def test_sub_sibling_gradients_not_aliased(self):
        a, b = _param((4,)), _param((4,), seed=1)
        c = a - b
        f = a * 3.0
        (c.sum() + f.sum()).backward()
        assert np.allclose(b.grad, -np.ones(4))
        assert np.allclose(a.grad, 4.0 * np.ones(4))

    def test_view_backward_does_not_alias_root_gradient(self):
        # reshape/transpose backwards pass views of the incoming grad;
        # accumulating them must copy, not adopt.
        a = _param((2, 3))
        out = a.reshape(3, 2)
        seed_grad = np.ones((3, 2))
        out.backward(seed_grad)
        a.grad += 1.0  # must not write through into seed_grad
        assert np.allclose(seed_grad, 1.0)

    def test_repeated_accumulation_still_correct(self):
        a = _param((3,))
        ((a - 1.0).sum() + (2.0 - a).sum() + (a * a).sum()).backward()
        assert np.allclose(a.grad, 2.0 * a.data)
