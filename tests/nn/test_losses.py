"""Loss functions: values against manual formulas and numerical safety."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradient
from repro.nn.layers import Parameter
from repro.nn.losses import (
    binary_cross_entropy,
    binary_cross_entropy_with_logits,
    l2_penalty,
    mse_loss,
)
from repro.nn.tensor import Tensor


class TestBCEWithLogits:
    def test_matches_manual(self):
        logits = np.array([0.5, -1.0, 2.0])
        labels = np.array([1.0, 0.0, 1.0])
        expected = np.mean(
            np.maximum(logits, 0) - logits * labels + np.log1p(np.exp(-np.abs(logits)))
        )
        out = binary_cross_entropy_with_logits(Tensor(logits), labels)
        assert out.item() == pytest.approx(expected)

    def test_extreme_logits_finite(self):
        logits = Tensor(np.array([1000.0, -1000.0]), requires_grad=True)
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.all(np.isfinite(logits.grad))

    def test_perfect_predictions_near_zero(self):
        loss = binary_cross_entropy_with_logits(
            Tensor(np.array([20.0, -20.0])), np.array([1.0, 0.0])
        )
        assert loss.item() < 1e-6

    def test_weights_scale_terms(self):
        logits = Tensor(np.zeros(2))
        labels = np.array([1.0, 1.0])
        unweighted = binary_cross_entropy_with_logits(logits, labels, reduction="sum")
        weighted = binary_cross_entropy_with_logits(
            logits, labels, weights=np.array([2.0, 0.0]), reduction="sum"
        )
        assert weighted.item() == pytest.approx(unweighted.item())

    def test_reductions(self):
        logits = Tensor(np.zeros(4))
        labels = np.ones(4)
        s = binary_cross_entropy_with_logits(logits, labels, reduction="sum").item()
        m = binary_cross_entropy_with_logits(logits, labels, reduction="mean").item()
        n = binary_cross_entropy_with_logits(logits, labels, reduction="none")
        assert s == pytest.approx(4 * m)
        assert n.shape == (4,)

    def test_unknown_reduction(self):
        with pytest.raises(ValueError):
            binary_cross_entropy_with_logits(Tensor(np.zeros(1)), np.zeros(1), reduction="max")

    def test_gradcheck(self):
        p = Parameter(np.random.default_rng(0).normal(size=(5,)))
        labels = np.array([1.0, 0, 1, 0, 1])
        check_gradient(
            lambda: binary_cross_entropy_with_logits(p * 1.0, labels), [p]
        )


class TestBCEOnProbs:
    def test_agrees_with_logit_version(self):
        logits = np.array([0.3, -0.7, 1.2])
        labels = np.array([1.0, 0.0, 0.0])
        via_probs = binary_cross_entropy(Tensor(logits).sigmoid(), labels).item()
        via_logits = binary_cross_entropy_with_logits(Tensor(logits), labels).item()
        assert via_probs == pytest.approx(via_logits, rel=1e-6)

    def test_clipping_protects_log(self):
        loss = binary_cross_entropy(Tensor(np.array([0.0, 1.0])), np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())


class TestMSE:
    def test_value(self):
        loss = mse_loss(Tensor(np.array([1.0, 2.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_gradcheck(self):
        p = Parameter(np.random.default_rng(0).normal(size=(4,)))
        check_gradient(lambda: mse_loss(p * 1.0, np.ones(4)), [p])


class TestL2Penalty:
    def test_value(self):
        p = Parameter(np.array([3.0, 4.0]))
        assert l2_penalty([p], 2.0).item() == pytest.approx(25.0)

    def test_empty_params(self):
        assert l2_penalty([], 1.0).item() == 0.0

    def test_negative_coefficient_raises(self):
        with pytest.raises(ValueError):
            l2_penalty([], -1.0)

    def test_gradient_is_scaled_param(self):
        p = Parameter(np.array([1.0, -2.0]))
        l2_penalty([p], 0.5).backward()
        assert np.allclose(p.grad, 0.5 * p.data)
