"""Property-based gradient checks: random compositions of ops.

Every generated program is a small pipeline of randomly chosen ops over
randomly shaped inputs; the analytic gradient must match central
differences.  This complements the per-op tests with coverage of op
*compositions* the hand-written tests never enumerate.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn.gradcheck import check_gradient
from repro.nn.tensor import Tensor, concat

# Smooth unary ops only — kinked ops (relu/abs/max) fail finite
# differences when an input sits near the kink, which random search
# will eventually find; they are covered by targeted tests instead.
_UNARY = ["tanh", "sigmoid", "exp", "neg", "scale"]
_BINARY = ["add", "mul", "sub"]


def _apply_unary(name, t):
    if name == "tanh":
        return t.tanh()
    if name == "sigmoid":
        return t.sigmoid()
    if name == "exp":
        return (t * 0.3).exp()  # temper growth
    if name == "neg":
        return -t
    return t * 1.7


def _apply_binary(name, a, b):
    if name == "add":
        return a + b
    if name == "mul":
        return a * b
    return a - b


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    ops=st.lists(st.sampled_from(_UNARY), min_size=1, max_size=4),
)
def test_random_unary_chains(seed, ops):
    rng = np.random.default_rng(seed)
    t = Tensor(rng.normal(size=(3, 4)) * 0.5, requires_grad=True)

    def loss():
        out = t
        for name in ops:
            out = _apply_unary(name, out)
        return out.sum()

    check_gradient(loss, [t], atol=2e-4, rtol=5e-3)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    op=st.sampled_from(_BINARY),
    broadcast=st.booleans(),
)
def test_random_binary_with_broadcast(seed, op, broadcast):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(3, 4)) * 0.5, requires_grad=True)
    b_shape = (1, 4) if broadcast else (3, 4)
    b = Tensor(rng.normal(size=b_shape) * 0.5, requires_grad=True)

    def loss():
        return _apply_binary(op, a, b).tanh().sum()

    check_gradient(loss, [a, b], atol=2e-4, rtol=5e-3)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(2, 8))
def test_matmul_chain_random_dims(seed, k):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(2, k)) * 0.4, requires_grad=True)
    b = Tensor(rng.normal(size=(k, 3)) * 0.4, requires_grad=True)

    def loss():
        return ((a @ b).sigmoid()).sum()

    check_gradient(loss, [a, b], atol=2e-4, rtol=5e-3)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), parts=st.integers(2, 4))
def test_concat_then_reduce(seed, parts):
    rng = np.random.default_rng(seed)
    tensors = [
        Tensor(rng.normal(size=(2, 3)) * 0.5, requires_grad=True)
        for _ in range(parts)
    ]

    def loss():
        return concat(tensors, axis=1).tanh().mean()

    check_gradient(loss, tensors, atol=2e-4, rtol=5e-3)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_gather_then_transform(seed):
    rng = np.random.default_rng(seed)
    table = Tensor(rng.normal(size=(6, 4)) * 0.5, requires_grad=True)
    idx = rng.integers(0, 6, size=5)

    def loss():
        return table.gather_rows(idx).sigmoid().sum()

    check_gradient(loss, [table], atol=2e-4, rtol=5e-3)
