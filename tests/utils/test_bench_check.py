"""The bench regression sentinel: ``check_report`` / ``repro bench --check``.

Unit tests drive :func:`check_report` on synthetic reports (row
matching, tolerance bands, honesty skips); the CLI tests run the real
``bench --check`` wiring on a shrunken workload grid, including a
deliberately slowed hot path that must flip the exit code.
"""

import copy

import pytest

from repro.utils.bench import (
    CHECK_MIN_DELTA_S,
    CHECK_TOLERANCE,
    SCHEMA,
    check_report,
    render_check_table,
)


def _report(**sections) -> dict:
    """A minimal v5-shaped report with the given benchmark sections."""
    return {
        "schema": SCHEMA,
        "git_commit": "a" * 40,
        "mode": "quick",
        "seed": 0,
        "benchmarks": sections,
    }


def _row(after_s: float, **identity) -> dict:
    return {"before_s": after_s * 2, "after_s": after_s, "speedup": 2.0, **identity}


class TestCheckReport:
    def test_identical_reports_have_no_regressions(self):
        rep = _report(
            embed_all=[_row(0.5, graph={"num_users": 9, "num_items": 4, "num_edges": 20})],
            kmeans=[_row(0.2, variant="single_pass", n=50, dim=4, k=3)],
        )
        result = check_report(rep, copy.deepcopy(rep))
        assert result["regressions"] == []
        assert result["checked"] == 2
        assert result["skipped"] == 0 and result["unmatched"] == 0

    def test_slowdown_beyond_tolerance_regresses(self):
        base = _report(kmeans=[_row(0.2, variant="single_pass", n=50, dim=4, k=3)])
        cur = copy.deepcopy(base)
        cur["benchmarks"]["kmeans"][0]["after_s"] = 0.5  # +150%, +300 ms
        result = check_report(cur, base)
        assert len(result["regressions"]) == 1
        assert "single_pass" in result["regressions"][0]
        entry = result["rows"][0]
        assert entry["status"] == "regression"
        assert entry["delta_pct"] == pytest.approx(150.0)

    def test_slowdown_within_tolerance_passes(self):
        base = _report(kmeans=[_row(0.2, variant="single_pass", n=50, dim=4, k=3)])
        cur = copy.deepcopy(base)
        cur["benchmarks"]["kmeans"][0]["after_s"] = 0.2 * (1 + CHECK_TOLERANCE) * 0.99
        result = check_report(cur, base)
        assert result["regressions"] == []

    def test_absolute_floor_shields_microsecond_rows(self):
        # 5x slower but only +0.4 ms — scheduler noise, never a regression.
        base = _report(kmeans=[_row(0.0001, variant="single_pass", n=50, dim=4, k=3)])
        cur = copy.deepcopy(base)
        cur["benchmarks"]["kmeans"][0]["after_s"] = 0.0005
        assert 0.0005 - 0.0001 < CHECK_MIN_DELTA_S
        result = check_report(cur, base)
        assert result["regressions"] == []

    def test_degraded_row_skipped_not_failed(self):
        base = _report(
            parallel=[
                _row(0.1, variant="kmeans_restarts", n=50, k=3, workers=4,
                     workers_effective=4, degraded=False)
            ]
        )
        cur = copy.deepcopy(base)
        row = cur["benchmarks"]["parallel"][0]
        row.update(after_s=5.0, degraded=True, workers_effective=1)
        result = check_report(cur, base)
        assert result["regressions"] == []
        assert result["skipped"] == 1
        assert result["rows"][0]["status"] == "skipped"
        assert "degraded" in result["rows"][0]["reason"]

    def test_workers_effective_mismatch_skipped(self):
        base = _report(
            parallel=[
                _row(0.1, variant="kmeans_restarts", n=50, k=3, workers=4,
                     workers_effective=4, degraded=False)
            ]
        )
        cur = copy.deepcopy(base)
        cur["benchmarks"]["parallel"][0].update(after_s=5.0, workers_effective=2)
        result = check_report(cur, base)
        assert result["regressions"] == []
        assert "workers_effective" in result["rows"][0]["reason"]

    def test_grid_mismatch_rows_are_unmatched_not_failed(self):
        # quick-vs-full grids: extra current rows are "new", baseline-only
        # rows are "missing"; neither fails the check.
        base = _report(
            embed_all=[
                _row(0.5, graph={"num_users": 9, "num_items": 4, "num_edges": 20}),
                _row(9.0, graph={"num_users": 900, "num_items": 400, "num_edges": 2000}),
            ]
        )
        cur = _report(
            embed_all=[
                _row(0.5, graph={"num_users": 9, "num_items": 4, "num_edges": 20}),
                _row(7.0, graph={"num_users": 77, "num_items": 40, "num_edges": 200}),
            ]
        )
        result = check_report(cur, base)
        assert result["regressions"] == []
        assert result["unmatched"] == 2
        statuses = {e["status"] for e in result["rows"]}
        assert {"ok", "new", "missing"} <= statuses

    def test_serving_rows_match_by_identity(self):
        # The v6 serving section round-trips: replay / delta_refresh /
        # run_day rows match themselves via their identity fields.
        rep = _report(
            serving=[
                _row(0.4, graph={"num_users": 600, "num_items": 400,
                                 "num_edges": 3600},
                     variant="replay", k=10, requests=400,
                     req_per_sec=1000.0, hit_rate=0.7,
                     p50_ms=0.1, p99_ms=0.5),
                _row(0.3, graph={"num_users": 600, "num_items": 400,
                                 "num_edges": 3600},
                     variant="delta_refresh", delta_edges=2, batch=128,
                     refresh_mode="delta", recompute_fraction=0.5),
                _row(0.2, graph={"num_users": 600, "num_items": 400,
                                 "num_edges": 3600},
                     variant="run_day", visitors=150),
            ]
        )
        result = check_report(rep, copy.deepcopy(rep))
        assert result["regressions"] == []
        assert result["checked"] == 3
        assert result["unmatched"] == 0
        assert all(e["status"] == "ok" for e in result["rows"])

    def test_slowed_serving_row_regresses(self):
        base = _report(
            serving=[
                _row(0.4, graph={"num_users": 600, "num_items": 400,
                                 "num_edges": 3600},
                     variant="replay", k=10, requests=400),
            ]
        )
        cur = copy.deepcopy(base)
        cur["benchmarks"]["serving"][0]["after_s"] = 1.0  # +150%, +600 ms
        result = check_report(cur, base)
        assert len(result["regressions"]) == 1
        assert "replay" in result["regressions"][0]
        assert result["rows"][0]["status"] == "regression"

    def test_negative_tolerance_rejected(self):
        rep = _report(kmeans=[_row(0.2, variant="single_pass", n=50, dim=4, k=3)])
        with pytest.raises(ValueError):
            check_report(rep, rep, tolerance=-0.1)


class TestRenderCheckTable:
    def test_table_lists_regressions_first_with_deltas(self):
        base = _report(
            kmeans=[_row(0.2, variant="single_pass", n=50, dim=4, k=3)],
            embed_all=[_row(0.5, graph={"num_users": 9, "num_items": 4, "num_edges": 20})],
        )
        cur = copy.deepcopy(base)
        cur["benchmarks"]["kmeans"][0]["after_s"] = 0.8
        text = render_check_table(check_report(cur, base))
        lines = text.splitlines()
        assert lines[2].startswith("REGRESSION")
        assert "+300.0%" in lines[2]
        assert "1 regression(s)" in lines[-1]
        assert "baseline commit aaaaaaaaaaaa" in lines[0]

    def test_skip_reason_rendered(self):
        base = _report(
            parallel=[
                _row(0.1, variant="kmeans_restarts", n=50, k=3, workers=4,
                     workers_effective=4, degraded=True)
            ]
        )
        text = render_check_table(check_report(copy.deepcopy(base), base))
        assert "skipped (degraded host)" in text


class TestCliBenchCheck:
    @pytest.fixture()
    def tiny_grids(self, monkeypatch):
        from repro.utils import bench

        monkeypatch.setitem(bench.GRAPH_SIZES, "quick", [(40, 30, 120)])
        monkeypatch.setitem(bench.KMEANS_SIZES, "quick", [(60, 4, 5)])
        monkeypatch.setitem(bench.SCORE_SIZES, "quick", [(40, 30, 5, 10)])
        monkeypatch.setitem(bench.PARALLEL_SCORE_SIZES, "quick", (32, 12, 8))
        monkeypatch.setitem(
            bench.SHARD_SIZES,
            "quick",
            [{"users": 120, "items": 90, "clusters": 6, "shards": 3, "degree": 4.0}],
        )

    def test_check_against_own_baseline_exits_zero(self, tiny_grids, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        assert main(["bench", "--mode", "quick", "--repeats", "1",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        code = main(["bench", "--mode", "quick", "--repeats", "1",
                     "--check", "--baseline", str(out)])
        printed = capsys.readouterr().out
        assert code == 0
        assert "bench --check" in printed
        assert "ok: no regressions" in printed

    def test_slowed_hot_path_flips_exit_code(self, tiny_grids, tmp_path, capsys,
                                             monkeypatch):
        import time

        from repro.cli import main
        from repro.serving.recommend import ScoreTableRecommender

        out = tmp_path / "bench.json"
        assert main(["bench", "--mode", "quick", "--repeats", "1",
                     "--out", str(out)]) == 0
        capsys.readouterr()

        slow = ScoreTableRecommender.recommend

        def crippled(self, user, k):
            time.sleep(0.002)
            return slow(self, user, k)

        monkeypatch.setattr(ScoreTableRecommender, "recommend", crippled)
        code = main(["bench", "--mode", "quick", "--repeats", "1",
                     "--check", "--baseline", str(out)])
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSION" in captured.out
        assert "score_topk" in captured.out
        assert "row(s) slower than baseline" in captured.err

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["bench", "--mode", "quick", "--repeats", "1",
                     "--check", "--baseline", str(tmp_path / "absent.json")])
        assert code == 2
        assert "cannot load baseline" in capsys.readouterr().err
