"""Bench report schema: commit stamp, throughput columns, legacy loaders."""

import json

import pytest

from repro.utils import bench
from repro.utils.bench import (
    SCHEMA,
    SCHEMA_V1,
    SCHEMA_V3,
    bench_hotpaths,
    git_commit,
    load_report,
    render_report,
    write_report,
)


@pytest.fixture(scope="module")
def tiny_report(tmp_path_factory):
    """One tiny bench run shared by the schema tests (wiring, not perf)."""
    sizes = dict(bench.GRAPH_SIZES)
    ksizes = dict(bench.KMEANS_SIZES)
    ssizes = dict(bench.SHARD_SIZES)
    bench.GRAPH_SIZES["quick"] = [(40, 30, 120)]
    bench.KMEANS_SIZES["quick"] = [(60, 4, 5)]
    bench.SHARD_SIZES["quick"] = [
        {"users": 120, "items": 90, "clusters": 6, "shards": 3, "degree": 4.0}
    ]
    try:
        report = bench_hotpaths("quick", seed=0, repeats=1)
    finally:
        bench.GRAPH_SIZES.update(sizes)
        bench.KMEANS_SIZES.update(ksizes)
        bench.SHARD_SIZES.update(ssizes)
    return report


class TestSchemaV2:
    def test_schema_and_commit_stamp(self, tiny_report):
        assert tiny_report["schema"] == SCHEMA
        commit = tiny_report["git_commit"]
        assert commit is None or (len(commit) == 40 and commit == git_commit())

    def test_throughput_columns(self, tiny_report):
        benches = tiny_report["benchmarks"]
        embed = benches["embed_all"][0]
        assert embed["vertices_embedded"] > 0
        assert embed["vertices_per_sec"] > 0
        sampling = benches["weighted_sampling"][0]
        assert sampling["samples_drawn"] == sampling["batch"] * sampling["fanout"]
        assert sampling["samples_per_sec"] > 0
        train = benches["train_epoch"][0]
        assert train["edges_seen"] > 0 and train["edges_per_sec"] > 0

    def test_v4_parallel_honesty_columns(self, tiny_report):
        import os

        for row in tiny_report["benchmarks"]["parallel"]:
            assert row["workers_effective"] == min(
                row["workers"], os.cpu_count() or 1
            )
            assert row["degraded"] == ((os.cpu_count() or 1) == 1)

    def test_v4_shard_section(self, tiny_report):
        rows = tiny_report["benchmarks"]["shard"]
        assert len(rows) == 1
        row = rows[0]
        assert row["bitwise_equal"] is True
        assert 0.0 <= row["edges_shard_local"] <= 1.0
        assert row["num_shards"] == 3 and row["build_s"] > 0

    def test_render_includes_throughput_and_commit(self, tiny_report):
        text = render_report(tiny_report)
        assert "vert/s" in text and "smp/s" in text and "edge/s" in text
        assert "commit" in text


class TestLoader:
    def test_round_trip_v2(self, tiny_report, tmp_path):
        path = write_report(tiny_report, tmp_path / "r.json")
        assert load_report(path) == json.loads(path.read_text())

    def test_upgrades_v1(self, tmp_path):
        v1 = {
            "schema": SCHEMA_V1,
            "mode": "quick",
            "seed": 0,
            "repeats": 1,
            "python": "3",
            "numpy": "2",
            "benchmarks": {
                "embed_all": [
                    {
                        "graph": {"num_users": 1, "num_items": 1, "num_edges": 1},
                        "before_s": 1.0,
                        "after_s": 0.5,
                        "speedup": 2.0,
                    }
                ]
            },
        }
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(v1))
        loaded = load_report(path)
        assert loaded["schema"] == SCHEMA
        assert loaded["git_commit"] is None
        # v1 rows render fine without throughput columns.
        assert "embed_all" in render_report(loaded)

    def test_upgrades_v3(self, tmp_path):
        v3 = {
            "schema": SCHEMA_V3,
            "git_commit": None,
            "mode": "quick",
            "seed": 0,
            "repeats": 1,
            "workers": 4,
            "cpu_count": 1,
            "python": "3",
            "numpy": "2",
            "benchmarks": {
                "parallel": [
                    {
                        "variant": "kmeans_restarts",
                        "n": 9,
                        "k": 2,
                        "workers": 4,
                        "before_s": 1.0,
                        "after_s": 0.5,
                        "speedup": 2.0,
                    }
                ]
            },
        }
        path = tmp_path / "v3.json"
        path.write_text(json.dumps(v3))
        loaded = load_report(path)
        assert loaded["schema"] == SCHEMA
        # v3 rows lack the shard section and honesty columns; both are
        # optional after upgrade and rendering still works.
        assert "shard" not in loaded["benchmarks"]
        assert "kmeans_restarts" in render_report(loaded)

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(ValueError):
            load_report(path)
