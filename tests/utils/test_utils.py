"""Utility modules: RNG plumbing, configs, timer, logging, tables."""

import logging
import time

import numpy as np
import pytest

from repro.utils.config import HiGNNConfig, KMeansConfig, SageConfig, TrainConfig
from repro.utils.logging import get_logger
from repro.utils.rng import RngMixin, derive_rng, ensure_rng
from repro.utils.tables import format_table
from repro.utils.timer import Timer


class TestRng:
    def test_ensure_from_int(self):
        a = ensure_rng(42)
        b = ensure_rng(42)
        assert a.random() == b.random()

    def test_ensure_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_derive_independent_streams(self):
        parent = ensure_rng(0)
        child1 = derive_rng(parent, 1)
        parent2 = ensure_rng(0)
        child2 = derive_rng(parent2, 1)
        assert child1.random() == child2.random()

    def test_derive_keys_differ(self):
        parent = ensure_rng(0)
        a = derive_rng(parent, 1)
        parent = ensure_rng(0)
        b = derive_rng(parent, 2)
        assert a.random() != b.random()

    def test_ensure_matches_default_rng_stream(self):
        # bench.py swapped np.random.default_rng(seed) for ensure_rng(seed);
        # the streams must stay bitwise identical or every recorded baseline
        # workload changes under the refactor.
        ours = ensure_rng(123)
        theirs = np.random.default_rng(123)
        assert np.array_equal(ours.normal(size=64), theirs.normal(size=64))
        assert np.array_equal(
            ours.integers(0, 1000, size=64), theirs.integers(0, 1000, size=64)
        )

    def test_mixin(self):
        class Thing(RngMixin):
            pass

        t = Thing(seed=3)
        first = t.rng.random()
        t.reseed(3)
        assert t.rng.random() == first


class TestConfigs:
    def test_sage_validation(self):
        with pytest.raises(ValueError):
            SageConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            SageConfig(num_steps=0)
        with pytest.raises(ValueError):
            SageConfig(num_steps=3, neighbor_samples=(5, 5))
        with pytest.raises(ValueError):
            SageConfig(aggregator="avg")
        with pytest.raises(ValueError):
            SageConfig(similarity_head="linear")

    def test_kmeans_validation(self):
        with pytest.raises(ValueError):
            KMeansConfig(algorithm="spectral")
        with pytest.raises(ValueError):
            KMeansConfig(max_iter=0)

    def test_train_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=-1)
        with pytest.raises(ValueError):
            TrainConfig(learning_rate=0)

    def test_hignn_validation(self):
        with pytest.raises(ValueError):
            HiGNNConfig(levels=0)
        with pytest.raises(ValueError):
            HiGNNConfig(cluster_decay=0.5)

    def test_clusters_at_level1_fraction(self):
        cfg = HiGNNConfig(initial_user_clusters=0.25)
        assert cfg.clusters_at(1, 100, "user") == 25

    def test_clusters_at_decay(self):
        cfg = HiGNNConfig(cluster_decay=5.0, initial_user_clusters=0.25)
        # Level 2 graph has ~25 vertices -> 25 / 5 = 5.
        assert cfg.clusters_at(2, 25, "user") == 5

    def test_clusters_at_absolute(self):
        cfg = HiGNNConfig(cluster_decay=4.0, initial_item_clusters=64)
        assert cfg.clusters_at(1, 1000, "item") == 64
        assert cfg.clusters_at(2, 64, "item") == 16

    def test_clusters_clamped(self):
        cfg = HiGNNConfig(min_clusters=2, initial_user_clusters=0.5)
        assert cfg.clusters_at(1, 3, "user") == 2
        assert cfg.clusters_at(3, 2, "user") == 2

    def test_clusters_bad_side(self):
        with pytest.raises(ValueError):
            HiGNNConfig().clusters_at(1, 10, "query")

    def test_to_dict_flattens(self):
        d = HiGNNConfig().to_dict()
        assert d["sage"]["embedding_dim"] == 32


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_lap_requires_context(self):
        with pytest.raises(RuntimeError):
            Timer().lap()


class TestLogging:
    def test_namespacing(self):
        assert get_logger("core").name == "repro.core"
        assert get_logger("repro.core").name == "repro.core"
        assert get_logger("").name == "repro"

    def test_null_handler_attached(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = out.split("\n")
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        assert set(lines[1]) <= {"-", "+"}

    def test_empty_rows_ok(self):
        out = format_table(["x"], [])
        assert "x" in out

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError):
            format_table([], [])
