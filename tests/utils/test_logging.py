"""Logging helpers: namespacing, NullHandler isolation, configure/reset."""

import io
import logging

import pytest

from repro.utils.logging import configure_logging, get_logger, reset_logging


@pytest.fixture(autouse=True)
def clean_handlers():
    """Every test leaves the 'repro' logger exactly as the library ships it."""
    reset_logging()
    yield
    reset_logging()


class TestNamespacing:
    def test_plain_name_prefixed(self):
        assert get_logger("core").name == "repro.core"

    def test_already_prefixed_untouched(self):
        assert get_logger("repro.core").name == "repro.core"
        assert get_logger("repro").name == "repro"

    def test_empty_name_is_root(self):
        assert get_logger("").name == "repro"

    def test_children_propagate_to_repro_root(self):
        assert get_logger("core.trainer").parent.name in ("repro.core", "repro")


class TestNullHandlerIsolation:
    def test_null_handler_attached_to_repro_root(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_only_null_handler_when_unconfigured(self):
        # After reset the library ships exactly its NullHandler; visible
        # output is always an application opt-in.
        root = logging.getLogger("repro")
        assert all(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_unconfigured_records_are_swallowed(self, capsys):
        get_logger("core.trainer").info("invisible")
        captured = capsys.readouterr()
        assert "invisible" not in captured.out + captured.err


class TestConfigureLogging:
    def test_installs_stream_handler_and_emits(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        get_logger("core.trainer").info("hello %d", 7)
        assert "hello 7" in stream.getvalue()
        assert "repro.core.trainer" in stream.getvalue()

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        get_logger("x").info("quiet")
        get_logger("x").warning("loud")
        out = stream.getvalue()
        assert "quiet" not in out and "loud" in out

    def test_reconfigure_does_not_duplicate_handlers(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        configure_logging("debug", stream=stream)
        root = logging.getLogger("repro")
        streams = [h for h in root.handlers if isinstance(h, logging.StreamHandler)
                   and not isinstance(h, logging.NullHandler)]
        assert len(streams) == 1
        get_logger("x").debug("once")
        assert stream.getvalue().count("once") == 1

    def test_accepts_int_level(self):
        handler = configure_logging(logging.ERROR)
        assert handler.level == logging.ERROR

    def test_unknown_level_name_raises(self):
        with pytest.raises(ValueError):
            configure_logging("chatty")

    def test_reset_removes_handler(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        reset_logging()
        get_logger("x").info("after-reset")
        assert "after-reset" not in stream.getvalue()
        root = logging.getLogger("repro")
        assert all(
            isinstance(h, logging.NullHandler)
            or not isinstance(h, logging.StreamHandler)
            for h in root.handlers
        )
