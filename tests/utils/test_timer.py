"""Timer stop/restart semantics and nested usage."""

import time

import pytest

from repro.utils.timer import Timer


class TestContextManager:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009
        assert not t.running

    def test_reentering_accumulates_instead_of_resetting(self):
        t = Timer()
        with t:
            time.sleep(0.005)
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= first + 0.004

    def test_nested_timers_are_independent(self):
        outer = Timer()
        inner = Timer()
        with outer:
            time.sleep(0.004)
            with inner:
                time.sleep(0.004)
        assert outer.elapsed >= inner.elapsed
        assert inner.elapsed >= 0.003


class TestStartStop:
    def test_stop_returns_and_freezes_elapsed(self):
        t = Timer().start()
        time.sleep(0.004)
        total = t.stop()
        assert total == t.elapsed >= 0.003
        frozen = t.elapsed
        time.sleep(0.004)
        assert t.elapsed == frozen

    def test_start_is_idempotent_while_running(self):
        t = Timer().start()
        t.start()  # no-op, must not reset the epoch
        time.sleep(0.004)
        assert t.stop() >= 0.003

    def test_stop_without_start_is_safe(self):
        t = Timer()
        assert t.stop() == 0.0

    def test_reset_zeroes(self):
        t = Timer().start()
        time.sleep(0.002)
        t.stop()
        t.reset()
        assert t.elapsed == 0.0 and not t.running

    def test_restart_zeroes_and_runs(self):
        t = Timer().start()
        time.sleep(0.01)
        t.restart()
        time.sleep(0.002)
        assert 0.0 < t.stop() < 0.01

    def test_running_flag(self):
        t = Timer()
        assert not t.running
        t.start()
        assert t.running
        t.stop()
        assert not t.running


class TestLap:
    def test_lap_inside_context(self):
        with Timer() as t:
            time.sleep(0.004)
            lap = t.lap()
            assert lap >= 0.003
            assert t.running  # lap does not stop the clock

    def test_lap_after_exit_returns_total(self):
        with Timer() as t:
            time.sleep(0.004)
        assert t.lap() == t.elapsed

    def test_lap_spans_stop_start_cycles(self):
        t = Timer()
        with t:
            time.sleep(0.003)
        with t:
            time.sleep(0.003)
            assert t.lap() >= 0.005

    def test_lap_before_any_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().lap()

    def test_lap_after_reset_raises(self):
        t = Timer().start()
        t.stop()
        t.reset()
        with pytest.raises(RuntimeError):
            t.lap()
