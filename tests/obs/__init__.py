"""Observability layer tests."""
