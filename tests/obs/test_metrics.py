"""Metrics registry: counters, gauges, histograms, global fast path."""

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter_add("hits")
        reg.counter_add("hits", 4)
        assert reg.counter("hits") == 5
        assert reg.counter("misses") == 0

    def test_gauge_holds_last_value(self):
        reg = MetricsRegistry()
        reg.gauge_set("level", 1)
        reg.gauge_set("level", 3)
        assert reg.gauges["level"] == 3.0

    def test_histogram_summary_stats(self):
        reg = MetricsRegistry()
        for v in (1.0, 5.0, 3.0):
            reg.observe("sizes", v)
        snap = reg.snapshot()["histograms"]["sizes"]
        assert snap["count"] == 3
        assert snap["min"] == 1.0
        assert snap["max"] == 5.0
        assert snap["mean"] == pytest.approx(3.0)

    def test_snapshot_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter_add("b")
        reg.counter_add("a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)  # must be serialisable


class TestPercentileHistograms:
    def test_snapshot_reports_percentiles(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.observe("lat", float(v))
        snap = reg.snapshot()["histograms"]["lat"]
        for key in ("p50", "p90", "p99"):
            assert key in snap
        # Log buckets bound relative error at ~1/16 of the value.
        assert snap["p50"] == pytest.approx(50.0, rel=0.10)
        assert snap["p90"] == pytest.approx(90.0, rel=0.10)
        assert snap["p99"] == pytest.approx(99.0, rel=0.10)
        assert snap["min"] <= snap["p50"] <= snap["p90"] <= snap["p99"] <= snap["max"]

    def test_percentiles_clamped_to_observed_range(self):
        reg = MetricsRegistry()
        reg.observe("one", 7.0)
        snap = reg.snapshot()["histograms"]["one"]
        assert snap["p50"] == snap["p90"] == snap["p99"] == 7.0

    def test_nonpositive_values_share_sentinel_bucket(self):
        reg = MetricsRegistry()
        for v in (-2.0, 0.0, 4.0):
            reg.observe("signed", v)
        snap = reg.snapshot()["histograms"]["signed"]
        assert snap["count"] == 3
        assert snap["min"] == -2.0
        assert snap["max"] == 4.0
        # p50 falls in the non-positive sentinel bucket, clamped >= min.
        assert -2.0 <= snap["p50"] <= 0.0

    def test_bucket_counts_are_exact_integers(self):
        reg = MetricsRegistry()
        for _ in range(5):
            reg.observe("same", 3.0)
        buckets = reg.snapshot()["histograms"]["same"]["buckets"]
        assert list(buckets.values()) == [5]

    def test_bucket_index_deterministic_across_magnitudes(self):
        from repro.obs.metrics import bucket_index, bucket_value

        for v in (1e-9, 0.1, 1.0, 3.7, 1024.0, 1e12):
            idx = bucket_index(v)
            assert bucket_index(v) == idx
            rep = bucket_value(idx)
            assert rep == pytest.approx(v, rel=1.0 / 16)


class TestGaugePolicies:
    def test_default_policy_not_recorded(self):
        reg = MetricsRegistry()
        reg.gauge_set("depth", 3.0)
        assert reg.snapshot()["gauge_policies"] == {}

    def test_max_policy_recorded_in_snapshot(self):
        reg = MetricsRegistry()
        reg.gauge_set("peak", 10.0, merge="max")
        assert reg.snapshot()["gauge_policies"] == {"peak": "max"}

    def test_unknown_policy_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.gauge_set("g", 1.0, merge="sum")

    def test_local_set_is_still_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge_set("peak", 10.0, merge="max")
        reg.gauge_set("peak", 4.0, merge="max")
        assert reg.gauges["peak"] == 4.0  # policy governs merge, not set


class TestModuleFastPath:
    def test_disabled_calls_are_noops(self):
        assert not obs.metrics_enabled()
        obs.counter_add("ignored", 5)
        obs.gauge_set("ignored", 1.0)
        obs.observe_value("ignored", 2.0)
        assert obs.current_registry() is None

    def test_enabled_calls_record(self):
        with obs.observe() as session:
            obs.counter_add("c", 2)
            obs.gauge_set("g", 7)
            obs.observe_value("h", 1.5)
        snap = session.registry.snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == 7.0
        assert snap["histograms"]["h"]["count"] == 1
