"""Metrics registry: counters, gauges, histograms, global fast path."""

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter_add("hits")
        reg.counter_add("hits", 4)
        assert reg.counter("hits") == 5
        assert reg.counter("misses") == 0

    def test_gauge_holds_last_value(self):
        reg = MetricsRegistry()
        reg.gauge_set("level", 1)
        reg.gauge_set("level", 3)
        assert reg.gauges["level"] == 3.0

    def test_histogram_summary_stats(self):
        reg = MetricsRegistry()
        for v in (1.0, 5.0, 3.0):
            reg.observe("sizes", v)
        snap = reg.snapshot()["histograms"]["sizes"]
        assert snap["count"] == 3
        assert snap["min"] == 1.0
        assert snap["max"] == 5.0
        assert snap["mean"] == pytest.approx(3.0)

    def test_snapshot_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter_add("b")
        reg.counter_add("a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)  # must be serialisable


class TestModuleFastPath:
    def test_disabled_calls_are_noops(self):
        assert not obs.metrics_enabled()
        obs.counter_add("ignored", 5)
        obs.gauge_set("ignored", 1.0)
        obs.observe_value("ignored", 2.0)
        assert obs.current_registry() is None

    def test_enabled_calls_record(self):
        with obs.observe() as session:
            obs.counter_add("c", 2)
            obs.gauge_set("g", 7)
            obs.observe_value("h", 1.5)
        snap = session.registry.snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == 7.0
        assert snap["histograms"]["h"]["count"] == 1
