"""Tracer and span semantics: nesting, attrs, enable/disable."""

import pytest

from repro import obs
from repro.obs.trace import NOOP_SPAN, Tracer


class TestDisabledFastPath:
    def test_span_returns_noop_when_disabled(self):
        assert not obs.tracing_enabled()
        assert obs.span("anything", foo=1) is NOOP_SPAN

    def test_noop_span_supports_protocol(self):
        with obs.span("x") as sp:
            assert sp.set(a=1) is sp

    def test_traced_calls_through(self):
        @obs.traced()
        def double(x):
            return 2 * x

        assert double(21) == 42


class TestNesting:
    def test_parent_child_structure(self):
        with obs.observe() as session:
            with obs.span("outer"):
                with obs.span("inner.a"):
                    pass
                with obs.span("inner.b"):
                    pass
        roots = session.tracer.roots
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner.a", "inner.b"]

    def test_durations_nest(self):
        with obs.observe() as session:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        outer = session.tracer.roots[0]
        inner = outer.children[0]
        assert outer.end_s is not None and inner.end_s is not None
        assert outer.duration_s >= inner.duration_s
        assert outer.self_s == pytest.approx(outer.duration_s - inner.duration_s)

    def test_attrs_set_during_span(self):
        with obs.observe() as session:
            with obs.span("epoch", epoch=0) as sp:
                sp.set(loss=0.5)
        root = session.tracer.roots[0]
        assert root.attrs == {"epoch": 0, "loss": 0.5}

    def test_walk_depths(self):
        with obs.observe() as session:
            with obs.span("a"):
                with obs.span("b"):
                    with obs.span("c"):
                        pass
        depths = {sp.name: d for sp, d in session.tracer.all_spans()}
        assert depths == {"a": 0, "b": 1, "c": 2}

    def test_out_of_order_finish_adopts_children(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("leaked")  # never finished explicitly
        tracer.finish(outer)
        assert [r.name for r in tracer.roots] == ["outer"]
        assert [c.name for c in tracer.roots[0].children] == ["leaked"]

    def test_close_finishes_open_spans(self):
        tracer = Tracer()
        tracer.start("open")
        tracer.close()
        assert tracer.roots[0].end_s is not None


class TestSession:
    def test_observe_installs_and_restores(self):
        assert not obs.tracing_enabled() and not obs.metrics_enabled()
        with obs.observe():
            assert obs.tracing_enabled() and obs.metrics_enabled()
        assert not obs.tracing_enabled() and not obs.metrics_enabled()

    def test_observe_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with obs.observe():
                with obs.span("doomed"):
                    raise RuntimeError("boom")
        assert not obs.tracing_enabled()

    def test_sessions_nest(self):
        with obs.observe() as outer_session:
            outer_tracer = obs.current_tracer()
            with obs.observe() as inner_session:
                assert obs.current_tracer() is inner_session.tracer
                with obs.span("inner-only"):
                    pass
            assert obs.current_tracer() is outer_tracer
        assert [s["name"] for s in inner_session.flat_trace()["spans"]] == [
            "inner-only"
        ]
        assert outer_session.flat_trace()["spans"] == []

    def test_traced_decorator_records(self):
        @obs.traced("my.op")
        def fn():
            return 1

        with obs.observe() as session:
            fn()
        assert session.tracer.roots[0].name == "my.op"
