"""End-to-end instrumentation: a HiGNN run reports spans + counters."""

import numpy as np
import pytest

from repro import obs
from repro.clustering.kmeans import kmeans
from repro.core.hignn import HiGNN
from repro.core.sage import BipartiteGraphSAGE
from repro.core.trainer import SageTrainer
from repro.graph.sampling import NeighborSampler
from repro.utils.config import HiGNNConfig, SageConfig, TrainConfig


@pytest.fixture()
def hignn_session(small_random_graph):
    config = HiGNNConfig(
        levels=2, train=TrainConfig(epochs=2, batch_size=32), min_clusters=2
    )
    with obs.observe() as session:
        hierarchy = HiGNN(config, seed=0).fit(small_random_graph)
    return session, hierarchy


class TestHiGNNTrace:
    def test_one_level_span_per_level_built(self, hignn_session):
        session, hierarchy = hignn_session
        levels = [
            sp for sp, _ in session.tracer.all_spans() if sp.name == "hignn.level"
        ]
        assert len(levels) == len(hierarchy.levels)
        assert sorted(sp.attrs["level"] for sp in levels) == list(
            range(1, len(hierarchy.levels) + 1)
        )

    def test_level_children_cover_train_cluster_coarsen(self, hignn_session):
        session, _ = hignn_session
        for sp, _ in session.tracer.all_spans():
            if sp.name != "hignn.level":
                continue
            child_names = {c.name for c in sp.children}
            assert {"hignn.train", "hignn.cluster", "hignn.coarsen"} <= child_names

    def test_level_spans_closed_and_contain_children(self, hignn_session):
        # hignn.level is opened via `with span(...)`: every level span must
        # be finished and its interval must cover its children's intervals
        # (a span parked in a variable pre-`with` would start too early).
        session, _ = hignn_session
        levels = [
            sp for sp, _ in session.tracer.all_spans() if sp.name == "hignn.level"
        ]
        assert levels
        for sp in levels:
            assert sp.end_s is not None
            for child in sp.children:
                assert child.start_s >= sp.start_s
                assert child.end_s is not None and child.end_s <= sp.end_s

    def test_epoch_spans_carry_loss_and_throughput(self, hignn_session):
        session, _ = hignn_session
        epochs = [
            sp for sp, _ in session.tracer.all_spans() if sp.name == "train.epoch"
        ]
        assert epochs
        for sp in epochs:
            assert np.isfinite(sp.attrs["loss"])
            assert sp.attrs["edges"] > 0
            assert sp.attrs["edges_per_sec"] > 0

    def test_core_counters_nonzero(self, hignn_session):
        session, _ = hignn_session
        for name in (
            "sage.vertices_embedded",
            "sampler.samples_drawn",
            "kmeans.iterations",
            "train.edges_seen",
            "coarsen.runs",
        ):
            assert session.counter(name) > 0, name

    def test_frontier_histogram_recorded(self, hignn_session):
        session, _ = hignn_session
        hist = session.registry.snapshot()["histograms"]["sage.frontier_size"]
        assert hist["count"] > 0 and hist["max"] >= hist["min"] > 0


class TestComponentCounters:
    def test_sampler_counts_samples(self, small_random_graph):
        sampler = NeighborSampler(small_random_graph, rng=0)
        with obs.observe() as session:
            sampler.sample_items_for_users(np.arange(10), 4)
        assert session.counter("sampler.samples_drawn") == 40
        assert session.counter("sampler.batches") == 1

    def test_embed_all_counts_vertices(self, small_random_graph):
        module = BipartiteGraphSAGE(6, 6, SageConfig(embedding_dim=8), rng=0)
        with obs.observe() as session:
            module.embed_all(small_random_graph)
        n = small_random_graph.num_users + small_random_graph.num_items
        # Layer-wise inference embeds every vertex once per step.
        assert session.counter("sage.vertices_embedded") == n * module.config.num_steps
        spans = [sp.name for sp, _ in session.tracer.all_spans()]
        assert "sage.embed_all" in spans

    def test_kmeans_counts_iterations(self, rng):
        points = rng.normal(size=(100, 4))
        with obs.observe() as session:
            kmeans(points, 5, rng=0)
        assert session.counter("kmeans.iterations") >= 1
        assert session.counter("kmeans.runs") == 1
        assert session.counter("kmeans.points_assigned") == 100

    def test_trainer_instrumentation_does_not_change_results(self, small_random_graph):
        def train():
            module = BipartiteGraphSAGE(6, 6, SageConfig(embedding_dim=8), rng=0)
            trainer = SageTrainer(
                module, small_random_graph, TrainConfig(epochs=2, batch_size=16), rng=0
            )
            return trainer.fit().epoch_losses

        plain = train()
        with obs.observe():
            traced = train()
        assert plain == traced
