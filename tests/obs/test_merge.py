"""Cross-process obs plumbing: registry merge, span serialisation, adopt.

These are the primitives ``repro.parallel`` uses to carry counters and
span trees from worker processes back into the parent session, tested
here in-process without any pool.
"""

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer


def _filled_registry(counter=3.0, gauge=1.5, samples=(1.0, 5.0, 3.0)):
    reg = MetricsRegistry()
    reg.counter_add("jobs", counter)
    reg.gauge_set("queue_depth", gauge)
    for value in samples:
        reg.observe("latency", value)
    return reg


class TestRegistryMerge:
    def test_counters_accumulate(self):
        parent = _filled_registry(counter=3.0)
        parent.merge(_filled_registry(counter=4.0).snapshot())
        assert parent.counter("jobs") == 7.0

    def test_merge_into_empty_registry(self):
        parent = MetricsRegistry()
        parent.merge(_filled_registry().snapshot())
        assert parent.snapshot() == _filled_registry().snapshot()

    def test_gauges_last_merge_wins(self):
        parent = _filled_registry(gauge=1.5)
        parent.merge(_filled_registry(gauge=9.0).snapshot())
        parent.merge(_filled_registry(gauge=2.5).snapshot())
        assert parent.gauges["queue_depth"] == 2.5

    def test_histograms_combine_stats(self):
        parent = _filled_registry(samples=(1.0, 5.0))
        parent.merge(_filled_registry(samples=(0.5, 9.0, 2.0)).snapshot())
        hist = parent.snapshot()["histograms"]["latency"]
        assert hist["count"] == 5
        assert hist["sum"] == 17.5
        assert hist["min"] == 0.5
        assert hist["max"] == 9.0
        assert np.isclose(hist["mean"], 3.5)

    def test_merge_empty_snapshot_is_noop(self):
        parent = _filled_registry()
        before = parent.snapshot()
        parent.merge({})
        assert parent.snapshot() == before

    def test_histogram_merge_is_split_invariant(self):
        """Merged histogram state is bitwise-identical however samples
        were partitioned across registries (the workers=1 vs workers=4
        determinism contract, exercised in-process)."""
        samples = [float(v) for v in (3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8)]
        serial = MetricsRegistry()
        for v in samples:
            serial.observe("lat", v)
        for split in (1, 3, 4):
            parent = MetricsRegistry()
            chunk = (len(samples) + split - 1) // split
            for start in range(0, len(samples), chunk):
                worker = MetricsRegistry()
                for v in samples[start : start + chunk]:
                    worker.observe("lat", v)
                parent.merge(worker.snapshot())
            assert parent.snapshot() == serial.snapshot()

    def test_merge_accepts_json_roundtripped_buckets(self):
        import json

        worker = MetricsRegistry()
        for v in (1.0, 2.0, 300.0):
            worker.observe("lat", v)
        snap = json.loads(json.dumps(worker.snapshot()))  # int keys -> str
        parent = MetricsRegistry()
        parent.merge(snap)
        assert parent.snapshot() == worker.snapshot()

    def test_merge_tolerates_bucketless_snapshot(self):
        """Snapshots from the pre-percentile schema (no ``buckets``)
        still merge: stats fold exactly, counts land in the mean's
        bucket so quantiles stay defined."""
        parent = MetricsRegistry()
        parent.merge(
            {"histograms": {"lat": {"count": 4, "sum": 8.0, "min": 1.0, "max": 3.0}}}
        )
        hist = parent.snapshot()["histograms"]["lat"]
        assert hist["count"] == 4
        assert hist["mean"] == 2.0
        assert 1.0 <= hist["p50"] <= 3.0
        assert sum(hist["buckets"].values()) == 4

    def test_gauge_max_policy_survives_merge(self):
        parent = MetricsRegistry()
        parent.gauge_set("peak_rss", 100.0, merge="max")
        worker = MetricsRegistry()
        worker.gauge_set("peak_rss", 250.0, merge="max")
        parent.merge(worker.snapshot())
        assert parent.gauges["peak_rss"] == 250.0
        # A later, smaller worker peak must not clobber the high-water mark.
        small = MetricsRegistry()
        small.gauge_set("peak_rss", 50.0, merge="max")
        parent.merge(small.snapshot())
        assert parent.gauges["peak_rss"] == 250.0

    def test_gauge_min_policy_survives_merge(self):
        parent = MetricsRegistry()
        parent.gauge_set("free_mb", 500.0, merge="min")
        worker = MetricsRegistry()
        worker.gauge_set("free_mb", 120.0, merge="min")
        parent.merge(worker.snapshot())
        assert parent.gauges["free_mb"] == 120.0

    def test_gauge_policy_carried_by_snapshot_alone(self):
        """The parent never wrote the gauge itself: the worker snapshot's
        declared policy governs the merge."""
        parent = MetricsRegistry()
        for value in (300.0, 100.0):
            worker = MetricsRegistry()
            worker.gauge_set("peak_rss", value, merge="max")
            parent.merge(worker.snapshot())
        assert parent.gauges["peak_rss"] == 300.0


def _finished_tree():
    """A two-level finished span forest on a throwaway tracer."""
    tracer = Tracer()
    with tracer.start("root", {"pid": 42}):
        with tracer.start("child_a", {"n": 1}):
            pass
        with tracer.start("child_b"):
            pass
    return tracer.roots[0]


class TestSpanSerialisation:
    def test_roundtrip_preserves_tree(self):
        original = _finished_tree()
        rebuilt = Span.from_dict(original.to_dict(), Tracer())
        assert rebuilt.name == "root"
        assert rebuilt.attrs == {"pid": 42}
        assert [c.name for c in rebuilt.children] == ["child_a", "child_b"]
        assert rebuilt.children[0].attrs == {"n": 1}
        assert rebuilt.start_s == original.start_s
        assert rebuilt.end_s == original.end_s

    def test_open_span_serialises_with_zero_duration(self):
        tracer = Tracer()
        sp = tracer.start("open")
        data = sp.to_dict()
        assert data["end_s"] == data["start_s"]
        tracer.close()


class TestTracerAdopt:
    def test_adopt_under_open_span(self):
        payload = [_finished_tree().to_dict()]
        tracer = Tracer()
        with tracer.start("parent_map"):
            tracer.adopt(payload)
        assert [r.name for r in tracer.roots] == ["parent_map"]
        adopted = tracer.roots[0].children
        assert [s.name for s in adopted] == ["root"]
        assert [c.name for c in adopted[0].children] == ["child_a", "child_b"]

    def test_adopt_without_open_span_adds_roots(self):
        tracer = Tracer()
        tracer.adopt([_finished_tree().to_dict(), _finished_tree().to_dict()])
        assert [r.name for r in tracer.roots] == ["root", "root"]

    def test_adopted_spans_walk_with_depths(self):
        tracer = Tracer()
        with tracer.start("outer"):
            tracer.adopt([_finished_tree().to_dict()])
        depths = {sp.name: depth for sp, depth in tracer.all_spans()}
        assert depths == {"outer": 0, "root": 1, "child_a": 2, "child_b": 2}
