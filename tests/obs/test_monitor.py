"""ResourceMonitor: lifecycle, sampling, heartbeats, progress rendering.

The monitor follows the repo's owner-destroys contract: the sampler
thread lives exactly as long as the owning ``with`` block, and
``active_monitors()`` must be empty afterwards (the default-on teardown
fixture in ``tests/conftest.py`` enforces this suite-wide).
"""

import io
import json
import os
import time

import pytest

from repro import obs
from repro.obs.monitor import (
    ResourceMonitor,
    _ProgressRenderer,
    active_monitors,
    sample_resources,
)


class TestSampling:
    def test_sample_resources_shape(self):
        sample = sample_resources()
        assert set(sample) == {"t_s", "rss_mb", "cpu_s", "open_fds"}
        assert sample["rss_mb"] > 0  # /proc/self/statm is readable here
        assert sample["cpu_s"] >= 0
        assert sample["open_fds"] > 0

    def test_series_is_json_ready_and_tagged(self):
        with ResourceMonitor(interval_s=0.005, tag="unit") as mon:
            time.sleep(0.02)
        series = mon.series()
        assert series["tag"] == "unit"
        assert series["pid"] == os.getpid()
        assert series["interval_s"] == 0.005
        assert len(series["samples"]) >= 2  # start + final at minimum
        json.dumps(series)

    def test_background_thread_samples_at_interval(self):
        with ResourceMonitor(interval_s=0.005) as mon:
            time.sleep(0.05)
        # ~10 expected; accept wide scheduling noise but demand >2
        # (i.e. more than just the start/stop samples).
        assert len(mon.samples) > 2

    def test_peak_rss_positive_and_at_least_sampled(self):
        with ResourceMonitor(interval_s=0.01) as mon:
            time.sleep(0.02)
        sampled = max(s["rss_mb"] for s in mon.samples)
        assert mon.peak_rss_mb >= sampled > 0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            ResourceMonitor(interval_s=0.0)


class TestLifecycle:
    def test_with_block_owns_thread(self):
        with ResourceMonitor(interval_s=0.01) as mon:
            assert mon.running
            assert mon in active_monitors()
        assert not mon.running
        assert mon not in active_monitors()

    def test_stop_is_idempotent(self):
        with ResourceMonitor(interval_s=0.01) as mon:
            pass
        before = len(mon.samples)
        mon.stop()
        assert len(mon.samples) == before

    def test_restart_rejected(self):
        with ResourceMonitor(interval_s=0.01) as mon:
            pass
        with pytest.raises(RuntimeError):
            mon.start()

    def test_stop_noops_off_owner_pid(self):
        """A forked copy must not try to join the owner's thread."""
        with ResourceMonitor(interval_s=0.01) as mon:
            mon._owner_pid = os.getpid() + 1  # simulate the forked child
            mon.stop()
            assert mon._thread is not None  # untouched
            mon._owner_pid = os.getpid()  # restore so __exit__ cleans up
        assert not mon.running

    def test_enter_installs_and_exit_restores_global(self):
        assert obs.current_monitor() is None
        with ResourceMonitor(interval_s=0.01) as outer:
            assert obs.current_monitor() is outer
            with ResourceMonitor(interval_s=0.01) as inner:
                assert obs.current_monitor() is inner
            assert obs.current_monitor() is outer
        assert obs.current_monitor() is None

    def test_stop_records_peak_gauge_with_max_policy(self):
        with obs.observe() as session:
            with ResourceMonitor(interval_s=0.01):
                time.sleep(0.01)
        snap = session.registry.snapshot()
        assert snap["gauges"]["monitor.peak_rss_mb"] > 0
        assert snap["gauge_policies"]["monitor.peak_rss_mb"] == "max"


class TestHeartbeats:
    def test_module_heartbeat_noop_without_monitor(self):
        assert not obs.monitoring_enabled()
        obs.heartbeat("ignored", 1, 10)  # must not raise

    def test_heartbeat_tracks_progress_and_eta(self):
        with ResourceMonitor(interval_s=1.0) as mon:
            obs.heartbeat("embed", 0, 100)
            time.sleep(0.02)
            state = mon.heartbeat("embed", 50, 100, frontier=7)
        assert state["done"] == 50.0
        assert state["total"] == 100.0
        assert state["beats"] == 2
        assert state["rate"] > 0
        assert state["eta_s"] == pytest.approx(50.0 / state["rate"], rel=1e-6)
        assert state["extra"] == {"frontier": 7}

    def test_heartbeat_without_total_has_no_eta(self):
        with ResourceMonitor(interval_s=1.0) as mon:
            time.sleep(0.005)
            state = mon.heartbeat("scan", 10)
        assert state["total"] is None
        assert state["eta_s"] is None

    def test_heartbeats_exported_in_series(self):
        with ResourceMonitor(interval_s=1.0) as mon:
            mon.heartbeat("build", 3, 9)
        series = mon.series()
        assert series["heartbeats"]["build"]["done"] == 3.0
        json.dumps(series)

    def test_numpy_extras_coerced_json_safe(self):
        np = pytest.importorskip("numpy")
        with ResourceMonitor(interval_s=1.0) as mon:
            mon.heartbeat("job", 1, 2, frontier=np.int64(5))
        json.dumps(mon.series())


class TestSeriesMerge:
    def test_adopted_series_follow_own(self):
        with ResourceMonitor(interval_s=0.01, tag="parent") as mon:
            mon.adopt_series({"tag": "worker-1", "samples": []})
            mon.adopt_series({"tag": "worker-2", "samples": []})
        tags = [s["tag"] for s in mon.all_series()]
        assert tags == ["parent", "worker-1", "worker-2"]


class TestProgressRenderer:
    def test_renders_single_line_with_eta(self):
        buf = io.StringIO()
        with ResourceMonitor(
            interval_s=1.0, progress_stream=buf
        ) as mon:
            obs.heartbeat("shard.embed", 0, 1000)
            time.sleep(0.11)  # past the renderer throttle
            obs.heartbeat("shard.embed", 500, 1000, shard=3)
        out = buf.getvalue()
        assert "\r" in out
        assert "[shard.embed]" in out
        assert "50.0%" in out
        assert "shard=3" in out
        assert out.endswith("\n")  # finish() sealed the line
        assert mon.running is False

    def test_renderer_throttles(self):
        buf = io.StringIO()
        renderer = _ProgressRenderer(buf, min_interval_s=10.0)
        renderer.render("job", {"done": 1.0, "total": 2.0})
        renderer.render("job", {"done": 2.0, "total": 2.0})
        assert buf.getvalue().count("\r") == 1

    def test_renderer_formats_counts(self):
        from repro.obs.monitor import _fmt_count

        assert _fmt_count(999) == "999"
        assert _fmt_count(50_000) == "50k"
        assert _fmt_count(2_500_000) == "2.5M"


@pytest.mark.parallel
class TestWorkerMonitors:
    def test_worker_series_ship_back_tagged(self):
        from repro.parallel import WorkerPool

        with obs.observe():
            with ResourceMonitor(interval_s=0.005, tag="parent") as mon:
                with WorkerPool(2) as pool:
                    out = pool.map(_slow_double, [1, 2, 3, 4])
        assert out == [2, 4, 6, 8]
        series = mon.all_series()
        assert series[0]["tag"] == "parent"
        worker_tags = {s["tag"] for s in series[1:]}
        if pool.parallel:  # degrades to in-process on broken platforms
            assert len(series) == 5
            assert all(t.startswith("worker-") for t in worker_tags)
            assert all(s["pid"] != os.getpid() for s in series[1:])

    def test_no_worker_monitor_without_parent_monitor(self):
        from repro.parallel import WorkerPool

        with obs.observe() as session:
            with WorkerPool(2) as pool:
                pool.map(_slow_double, [1, 2])
        # no monitor active: workers must not ship series or peak gauges
        assert "monitor.peak_rss_mb" not in session.registry.snapshot()["gauges"]


def _slow_double(task, _ctx):
    time.sleep(0.02)
    return task * 2
