"""Bench guard: the disabled fast path must stay near-zero cost.

The instrumentation calls left in hot loops (``counter_add`` in
``NeighborSampler._sample``, ``span`` in the trainer) execute millions
of times in a full run, so the disabled path is budgeted per call here
with deliberately generous bounds — this guards against accidentally
making the no-op path allocate or lock, not against CI noise.
"""

import time

from repro import obs

CALLS = 50_000
# Generous per-call ceilings (seconds): a regression to dict-building or
# registry lookups on the disabled path blows these by 10x+.
DISABLED_BUDGET_S = 5e-6
ENABLED_BUDGET_S = 120e-6


def _per_call(fn, calls=CALLS):
    t0 = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - t0) / calls


def test_disabled_counter_is_cheap():
    assert not obs.metrics_enabled()
    per_call = _per_call(lambda: obs.counter_add("guard.counter", 3))
    assert per_call < DISABLED_BUDGET_S, f"{per_call * 1e9:.0f}ns per disabled call"


def test_disabled_span_is_cheap():
    assert not obs.tracing_enabled()

    def op():
        with obs.span("guard.span"):
            pass

    per_call = _per_call(op)
    assert per_call < DISABLED_BUDGET_S, f"{per_call * 1e9:.0f}ns per disabled call"


def test_disabled_observe_value_is_cheap():
    per_call = _per_call(lambda: obs.observe_value("guard.hist", 1.0))
    assert per_call < DISABLED_BUDGET_S


def test_disabled_heartbeat_is_cheap():
    assert not obs.monitoring_enabled()
    per_call = _per_call(lambda: obs.heartbeat("guard.progress", 1, 10))
    assert per_call < DISABLED_BUDGET_S


def test_enabled_observe_value_is_bounded():
    # Log-bucketing (frexp + dict update) must stay near-free relative
    # to the numpy work the sample describes.
    with obs.observe():
        per_call = _per_call(lambda: obs.observe_value("h", 3.7), calls=10_000)
    assert per_call < ENABLED_BUDGET_S


def test_enabled_paths_are_bounded():
    # Sanity ceiling only: enabled instrumentation must stay far below
    # the cost of the numpy work it wraps.
    with obs.observe():
        counter = _per_call(lambda: obs.counter_add("c", 1), calls=10_000)

        def op():
            with obs.span("s"):
                pass

        spans = _per_call(op, calls=10_000)
    assert counter < ENABLED_BUDGET_S
    assert spans < ENABLED_BUDGET_S
