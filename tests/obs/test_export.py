"""Exporters: Chrome trace events, flat dump, summary tables."""

import json

import numpy as np

from repro import obs


def _session_with_work():
    with obs.observe() as session:
        with obs.span("outer", level=np.int64(1)):
            with obs.span("inner"):
                obs.counter_add("work_done", 10)
        obs.observe_value("sizes", 4.0)
    return session


class TestChromeTrace:
    def test_events_shape(self):
        doc = _session_with_work().chrome_trace()
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert {"pid", "tid", "args"} <= set(event)

    def test_child_interval_contained_in_parent(self):
        events = _session_with_work().chrome_trace()["traceEvents"]
        outer, inner = events
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_metrics_block_and_json_round_trip(self, tmp_path):
        session = _session_with_work()
        path = session.write_chrome_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["metrics"]["counters"]["work_done"] == 10
        assert doc["metrics"]["histograms"]["sizes"]["count"] == 1

    def test_numpy_attrs_coerced(self, tmp_path):
        session = _session_with_work()
        doc = json.loads(session.write_chrome_trace(tmp_path / "t.json").read_text())
        assert doc["traceEvents"][0]["args"]["level"] == 1


class TestFlatTrace:
    def test_depth_and_path(self, tmp_path):
        session = _session_with_work()
        doc = json.loads(session.write_flat_trace(tmp_path / "flat.json").read_text())
        spans = {s["name"]: s for s in doc["spans"]}
        assert spans["outer"]["depth"] == 0
        assert spans["inner"]["depth"] == 1
        assert spans["inner"]["path"] == "outer/inner"
        assert spans["outer"]["num_children"] == 1
        assert doc["schema"] == obs.TRACE_SCHEMA


class TestSummaryTables:
    def test_span_summary_aggregates(self):
        with obs.observe() as session:
            for _ in range(3):
                with obs.span("repeated"):
                    pass
        table = session.span_summary()
        assert "repeated" in table
        assert " 3 " in table  # call count column

    def test_metrics_summary_lists_all_kinds(self):
        with obs.observe() as session:
            obs.counter_add("c", 1)
            obs.gauge_set("g", 2)
            obs.observe_value("h", 3)
        table = session.metrics_summary()
        for token in ("counter", "gauge", "histogram", "c", "g", "h"):
            assert token in table

    def test_empty_session_tables_render(self):
        with obs.observe() as session:
            pass
        assert "span" in session.span_summary()
        assert "metric" in session.metrics_summary()
