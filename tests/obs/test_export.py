"""Exporters: Chrome trace events, flat dump, summary tables."""

import json

import numpy as np

from repro import obs


def _session_with_work():
    with obs.observe() as session:
        with obs.span("outer", level=np.int64(1)):
            with obs.span("inner"):
                obs.counter_add("work_done", 10)
        obs.observe_value("sizes", 4.0)
    return session


class TestChromeTrace:
    def test_events_shape(self):
        doc = _session_with_work().chrome_trace()
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert {"pid", "tid", "args"} <= set(event)

    def test_child_interval_contained_in_parent(self):
        events = _session_with_work().chrome_trace()["traceEvents"]
        outer, inner = events
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_metrics_block_and_json_round_trip(self, tmp_path):
        session = _session_with_work()
        path = session.write_chrome_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["metrics"]["counters"]["work_done"] == 10
        assert doc["metrics"]["histograms"]["sizes"]["count"] == 1

    def test_numpy_attrs_coerced(self, tmp_path):
        session = _session_with_work()
        doc = json.loads(session.write_chrome_trace(tmp_path / "t.json").read_text())
        assert doc["traceEvents"][0]["args"]["level"] == 1


class TestFlatTrace:
    def test_depth_and_path(self, tmp_path):
        session = _session_with_work()
        doc = json.loads(session.write_flat_trace(tmp_path / "flat.json").read_text())
        spans = {s["name"]: s for s in doc["spans"]}
        assert spans["outer"]["depth"] == 0
        assert spans["inner"]["depth"] == 1
        assert spans["inner"]["path"] == "outer/inner"
        assert spans["outer"]["num_children"] == 1
        assert doc["schema"] == obs.TRACE_SCHEMA


class TestSummaryTables:
    def test_span_summary_aggregates(self):
        with obs.observe() as session:
            for _ in range(3):
                with obs.span("repeated"):
                    pass
        table = session.span_summary()
        assert "repeated" in table
        assert " 3 " in table  # call count column

    def test_metrics_summary_lists_all_kinds(self):
        with obs.observe() as session:
            obs.counter_add("c", 1)
            obs.gauge_set("g", 2)
            obs.observe_value("h", 3)
        table = session.metrics_summary()
        for token in ("counter", "gauge", "histogram", "c", "g", "h"):
            assert token in table

    def test_empty_session_tables_render(self):
        with obs.observe() as session:
            pass
        assert "span" in session.span_summary()
        assert "metric" in session.metrics_summary()

    def test_histogram_row_reports_percentiles(self):
        with obs.observe() as session:
            for v in range(1, 101):
                obs.observe_value("latency", float(v))
        table = session.metrics_summary()
        assert "p50=" in table and "p90=" in table and "p99=" in table


class TestExportEdgeCases:
    def test_empty_tracer_exports_cleanly(self, tmp_path):
        with obs.observe() as session:
            pass
        doc = session.chrome_trace()
        assert doc["traceEvents"] == []
        assert doc["otherData"]["schema"] == obs.TRACE_SCHEMA
        flat = json.loads(session.write_flat_trace(tmp_path / "f.json").read_text())
        assert flat["spans"] == []

    def test_non_json_safe_attrs_coerced_or_stringified(self, tmp_path):
        with obs.observe() as session:
            with obs.span(
                "s",
                scalar=np.float32(1.5),
                array=np.arange(3),  # multi-element: .item() raises
                flag=np.bool_(True),
            ):
                pass
        path = session.write_chrome_trace(tmp_path / "t.json")
        args = json.loads(path.read_text())["traceEvents"][0]["args"]
        assert args["scalar"] == 1.5
        assert args["flag"] is True
        assert isinstance(args["array"], str)  # stringified, not dropped

    def test_metrics_json_round_trip(self, tmp_path):
        with obs.observe() as session:
            obs.counter_add("c", 2)
            obs.observe_value("h", 1.0)
            obs.gauge_set("peak", 7.0, merge="max")
        path = obs.write_metrics_json(session.registry, tmp_path / "m.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == obs.TRACE_SCHEMA
        assert doc["metrics"]["counters"]["c"] == 2
        assert doc["metrics"]["histograms"]["h"]["p50"] > 0
        assert doc["metrics"]["gauge_policies"]["peak"] == "max"


class TestMonitorCounterEvents:
    def _series(self, samples, tag="main", pid=123):
        return [{"tag": tag, "pid": pid, "samples": samples}]

    def test_counter_events_shape_and_rebase(self):
        series = self._series(
            [{"t_s": 10.0, "rss_mb": 50.0, "cpu_s": 1.0, "open_fds": 8}]
        )
        events = obs.monitor_counter_events(series, origin_s=9.0)
        assert {e["name"] for e in events} == {
            "rss_mb (main)",
            "cpu_s (main)",
            "open_fds (main)",
        }
        for event in events:
            assert event["ph"] == "C"
            assert event["cat"] == "repro.monitor"
            assert event["pid"] == 123
            assert event["ts"] == 1e6  # rebased to the tracer origin

    def test_pre_origin_samples_clamped_to_zero(self):
        series = self._series([{"t_s": 5.0, "rss_mb": 1.0}])
        events = obs.monitor_counter_events(series, origin_s=9.0)
        assert events and all(e["ts"] == 0.0 for e in events)

    def test_missing_and_negative_values_skipped(self):
        series = self._series(
            [{"t_s": 0.0, "rss_mb": -1.0, "cpu_s": None, "open_fds": 4}]
        )
        events = obs.monitor_counter_events(series, origin_s=0.0)
        assert [e["name"] for e in events] == ["open_fds (main)"]

    def test_counter_events_ride_along_in_chrome_trace(self, tmp_path):
        with obs.observe() as session:
            with obs.span("work"):
                with obs.ResourceMonitor(interval_s=0.01) as mon:
                    mon.sample_now()
        path = session.write_chrome_trace(tmp_path / "t.json", )
        doc = json.loads(path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X"}  # no monitor attached to the session
        session.monitor = mon
        doc = session.chrome_trace()
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X", "C"}
        json.dumps(doc)  # whole document must stay JSON-serialisable
