"""Ground-truth topic trees."""

import numpy as np
import pytest

from repro.data.topics import TopicTree


@pytest.fixture(scope="module")
def tree():
    return TopicTree.generate(branching=(3, 2, 2), embedding_dim=8, rng=0)


class TestStructure:
    def test_node_counts(self, tree):
        # 1 root + 3 + 6 + 12
        assert tree.n_nodes == 22
        assert tree.n_leaves == 12
        assert tree.max_depth == 3

    def test_root(self, tree):
        assert tree.parent[0] == -1
        assert tree.depth[0] == 0

    def test_children_consistent_with_parent(self, tree):
        for v in range(1, tree.n_nodes):
            assert v in tree.children[tree.parent[v]]

    def test_leaves_at_max_depth(self, tree):
        assert np.all(tree.depth[tree.leaves] == tree.max_depth)

    def test_bad_branching_raises(self):
        with pytest.raises(ValueError):
            TopicTree.generate(branching=())
        with pytest.raises(ValueError):
            TopicTree.generate(branching=(2, 0))


class TestQueries:
    def test_ancestors_path(self, tree):
        leaf = int(tree.leaves[0])
        path = tree.ancestors(leaf)
        assert path[-1] == 0  # ends at root
        assert len(path) == tree.max_depth
        # Depths strictly decrease along the path.
        depths = [tree.depth[v] for v in path]
        assert depths == sorted(depths, reverse=True)

    def test_ancestor_at_depth(self, tree):
        leaf = int(tree.leaves[5])
        assert tree.ancestor_at_depth(leaf, tree.max_depth) == leaf
        anc1 = tree.ancestor_at_depth(leaf, 1)
        assert tree.depth[anc1] == 1

    def test_ancestor_below_node_raises(self, tree):
        with pytest.raises(ValueError):
            tree.ancestor_at_depth(0, 2)

    def test_lca_symmetric(self, tree):
        a, b = int(tree.leaves[0]), int(tree.leaves[7])
        assert tree.lowest_common_ancestor(a, b) == tree.lowest_common_ancestor(b, a)

    def test_lca_of_self(self, tree):
        leaf = int(tree.leaves[3])
        assert tree.lowest_common_ancestor(leaf, leaf) == leaf

    def test_leaf_distance_zero_for_same(self, tree):
        leaf = int(tree.leaves[0])
        assert tree.leaf_distance(leaf, leaf) == 0

    def test_siblings_distance_one(self, tree):
        # Leaves 0 and 1 share a parent by BFS construction.
        a, b = int(tree.leaves[0]), int(tree.leaves[1])
        assert tree.parent[a] == tree.parent[b]
        assert tree.leaf_distance(a, b) == 1

    def test_distance_matrix_symmetric(self, tree):
        mat = tree.leaf_distance_matrix()
        assert np.array_equal(mat, mat.T)
        assert np.all(np.diag(mat) == 0)
        assert mat.max() <= tree.max_depth


class TestEmbeddingsAndVocab:
    def test_sibling_leaves_closer_than_cousins(self, tree):
        emb = tree.embeddings
        sib_a, sib_b = int(tree.leaves[0]), int(tree.leaves[1])
        far = int(tree.leaves[-1])
        assert tree.leaf_distance(sib_a, far) > 1
        d_sib = np.linalg.norm(emb[sib_a] - emb[sib_b])
        d_far = np.linalg.norm(emb[sib_a] - emb[far])
        assert d_sib < d_far

    def test_vocab_unique_per_topic(self, tree):
        all_words = [w for words in tree.vocab for w in words]
        assert len(all_words) == len(set(all_words))

    def test_names_unique(self, tree):
        assert len(tree.names) == len(set(tree.names))

    def test_topic_words_include_ancestors(self, tree):
        leaf = int(tree.leaves[0])
        own_only = tree.topic_words(leaf, include_ancestors=False)
        with_anc = tree.topic_words(leaf, include_ancestors=True)
        assert set(own_only) < set(with_anc)

    def test_deterministic(self):
        a = TopicTree.generate(branching=(2, 2), rng=5)
        b = TopicTree.generate(branching=(2, 2), rng=5)
        assert a.names == b.names
        assert np.allclose(a.embeddings, b.embeddings)
