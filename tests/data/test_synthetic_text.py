"""The synthetic query-item world."""

import numpy as np
import pytest

from repro.data.synthetic_text import QueryItemGenerator, QueryWorldConfig
from repro.data.topics import TopicTree


@pytest.fixture(scope="module")
def dataset():
    return QueryItemGenerator(
        QueryWorldConfig(num_queries=60, num_items=90, branching=(3, 2), clicks_per_query=8.0),
        seed=0,
    ).build_dataset()


class TestConfig:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            QueryWorldConfig(num_queries=1)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            QueryWorldConfig(topic_match_decay=0.0)


class TestDataset:
    def test_shapes(self, dataset):
        assert dataset.num_queries == 60
        assert dataset.num_items == 90
        assert len(dataset.query_texts) == 60
        assert len(dataset.item_titles) == 90

    def test_texts_nonempty(self, dataset):
        assert all(len(t) > 0 for t in dataset.query_texts)
        assert all(len(t) > 0 for t in dataset.item_titles)

    def test_item_topics_are_leaves(self, dataset):
        assert set(dataset.item_leaf.tolist()) <= set(dataset.tree.leaves.tolist())

    def test_query_topics_valid_nodes(self, dataset):
        assert dataset.query_topic.min() >= 1  # never the root
        assert dataset.query_topic.max() < dataset.tree.n_nodes

    def test_some_internal_queries(self, dataset):
        depths = dataset.tree.depth[dataset.query_topic]
        assert (depths < dataset.tree.max_depth).any()
        assert (depths == dataset.tree.max_depth).any()

    def test_clicks_favor_matching_topics(self, dataset):
        tree = dataset.tree
        match, total = 0, 0
        for q in range(dataset.num_queries):
            topic = int(dataset.query_topic[q])
            for item in dataset.graph.item_neighbors(q):
                leaf = int(dataset.item_leaf[int(item)])
                total += 1
                if tree.ancestor_at_depth(leaf, tree.depth[topic]) == topic:
                    match += 1
        assert total > 0
        assert match / total > 0.4  # far above the ~1/n_subtrees chance

    def test_titles_contain_topic_words(self, dataset):
        tree = dataset.tree
        hits = 0
        for item in range(40):
            own = set(tree.topic_words(int(dataset.item_leaf[item])))
            if own & set(dataset.item_titles[item]):
                hits += 1
        assert hits > 25  # most titles carry at least one topical word

    def test_item_label_at_depth(self, dataset):
        labels = dataset.item_label_at_depth(1)
        assert np.all(dataset.tree.depth[labels] == 1)

    def test_shared_tree_reuse(self):
        tree = TopicTree.generate(branching=(2, 2), rng=3)
        ds = QueryItemGenerator(
            QueryWorldConfig(num_queries=20, num_items=30, branching=(2, 2)),
            seed=0,
            tree=tree,
        ).build_dataset()
        assert ds.tree is tree

    def test_deterministic(self):
        cfg = QueryWorldConfig(num_queries=25, num_items=30, branching=(2, 2))
        a = QueryItemGenerator(cfg, seed=4).build_dataset()
        b = QueryItemGenerator(cfg, seed=4).build_dataset()
        assert a.graph.edge_set() == b.graph.edge_set()
        assert a.query_texts == b.query_texts
