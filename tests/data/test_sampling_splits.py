"""Replicate sampling (Section IV-B-1) and train/validation splits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.sampling import class_ratio, replicate_to_ratio, subsample_negatives
from repro.data.schema import LabeledSamples
from repro.data.splits import stratified_split, train_validation_split


def _samples(n_pos, n_neg, seed=0):
    rng = np.random.default_rng(seed)
    n = n_pos + n_neg
    labels = np.concatenate([np.ones(n_pos, dtype=int), np.zeros(n_neg, dtype=int)])
    rng.shuffle(labels)
    return LabeledSamples(
        users=rng.integers(0, 50, n),
        items=rng.integers(0, 40, n),
        labels=labels,
    )


class TestReplicate:
    def test_hits_target_ratio(self):
        s = replicate_to_ratio(_samples(10, 300), 3.0, rng=0)
        assert class_ratio(s) == pytest.approx(3.0, rel=0.05)

    def test_negatives_untouched(self):
        original = _samples(10, 300)
        s = replicate_to_ratio(original, 3.0, rng=0)
        assert s.num_negative == original.num_negative

    def test_noop_when_already_balanced(self):
        original = _samples(100, 150)
        assert replicate_to_ratio(original, 3.0, rng=0) is original

    def test_no_positives_noop(self):
        original = _samples(0, 50)
        assert replicate_to_ratio(original, 3.0, rng=0) is original

    def test_replicas_are_real_positives(self):
        original = _samples(5, 100, seed=2)
        pos_pairs = set(
            zip(
                original.users[original.labels == 1].tolist(),
                original.items[original.labels == 1].tolist(),
            )
        )
        s = replicate_to_ratio(original, 3.0, rng=0)
        new_pos = set(zip(s.users[s.labels == 1].tolist(), s.items[s.labels == 1].tolist()))
        assert new_pos == pos_pairs

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            replicate_to_ratio(_samples(5, 5), 0.0)

    @settings(max_examples=25, deadline=None)
    @given(n_pos=st.integers(1, 30), n_neg=st.integers(1, 300), ratio=st.floats(0.5, 10))
    def test_property_ratio_never_exceeds_target(self, n_pos, n_neg, ratio):
        s = replicate_to_ratio(_samples(n_pos, n_neg), ratio, rng=0)
        assert class_ratio(s) <= ratio + 1.0  # integer rounding slack


class TestSubsample:
    def test_drops_to_ratio(self):
        s = subsample_negatives(_samples(10, 300), 3.0, rng=0)
        assert s.num_negative == 30
        assert s.num_positive == 10

    def test_noop_when_below(self):
        original = _samples(10, 20)
        assert subsample_negatives(original, 3.0, rng=0) is original


class TestClassRatio:
    def test_value(self):
        assert class_ratio(_samples(10, 30)) == pytest.approx(3.0)

    def test_no_positives_is_inf(self):
        assert class_ratio(_samples(0, 10)) == float("inf")


class TestSplits:
    def test_sizes(self):
        train, val = train_validation_split(_samples(50, 150), 0.2, rng=0)
        assert len(val) == 40
        assert len(train) == 160

    def test_partition_is_exact(self):
        s = _samples(30, 70)
        train, val = train_validation_split(s, 0.25, rng=0)
        assert len(train) + len(val) == len(s)

    def test_stratified_preserves_ratio(self):
        s = _samples(100, 300)
        train, val = stratified_split(s, 0.2, rng=0)
        assert class_ratio(train) == pytest.approx(3.0, rel=0.1)
        assert class_ratio(val) == pytest.approx(3.0, rel=0.1)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_validation_split(_samples(5, 5), 0.0)
        with pytest.raises(ValueError):
            stratified_split(_samples(5, 5), 1.0)


class TestLabeledSamples:
    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            LabeledSamples(np.zeros(3), np.zeros(2), np.zeros(3))

    def test_shuffled_preserves_multiset(self):
        s = _samples(5, 10)
        shuffled = s.shuffled(np.random.default_rng(0))
        assert sorted(zip(s.users, s.items, s.labels)) == sorted(
            zip(shuffled.users, shuffled.items, shuffled.labels)
        )
