"""Dataset and embedding persistence round-trips."""

import numpy as np
import pytest

from repro.data.io import load_dataset_file, load_embeddings, save_dataset, save_embeddings


class TestDatasetRoundtrip:
    def test_full_roundtrip(self, tiny_dataset, tmp_path):
        path = tmp_path / "ds.npz"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset_file(path)
        assert loaded.name == tiny_dataset.name
        assert loaded.graph.edge_set() == tiny_dataset.graph.edge_set()
        assert np.allclose(loaded.graph.edge_weights, tiny_dataset.graph.edge_weights)
        assert np.allclose(loaded.graph.user_features, tiny_dataset.graph.user_features)
        assert np.array_equal(loaded.train.labels, tiny_dataset.train.labels)
        assert np.array_equal(loaded.test.users, tiny_dataset.test.users)
        assert np.allclose(loaded.user_profiles, tiny_dataset.user_profiles)
        assert len(loaded.log) == len(tiny_dataset.log)
        assert loaded.metadata["test_day"] == tiny_dataset.metadata["test_day"]

    def test_oracle_not_persisted(self, tiny_dataset, tmp_path):
        path = tmp_path / "ds.npz"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset_file(path)
        assert loaded.ground_truth is None

    def test_loaded_dataset_trains(self, tiny_dataset, tmp_path):
        from repro.prediction import CVRTrainConfig, FeatureAssembler, train_cvr_model

        path = tmp_path / "ds.npz"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset_file(path)
        assembler = FeatureAssembler.for_dataset(loaded)
        x, y = assembler.assemble_samples(loaded.train)
        model, _ = train_cvr_model(x, y, CVRTrainConfig(hidden=(8,), epochs=1), rng=0)
        assert np.all(np.isfinite(model.predict_proba(x[:10])))


class TestEmbeddingsRoundtrip:
    def test_roundtrip_with_dims(self, tmp_path):
        path = tmp_path / "emb.npz"
        zu = np.random.default_rng(0).normal(size=(10, 6))
        zi = np.random.default_rng(1).normal(size=(8, 6))
        save_embeddings(path, zu, zi, level_dims=[3, 3])
        lu, li, dims = load_embeddings(path)
        assert np.allclose(lu, zu)
        assert np.allclose(li, zi)
        assert dims == [3, 3]

    def test_roundtrip_without_dims(self, tmp_path):
        path = tmp_path / "emb.npz"
        save_embeddings(path, np.ones((2, 2)), np.ones((2, 2)))
        _, _, dims = load_embeddings(path)
        assert dims is None
