"""Named dataset presets and schema helpers."""

import numpy as np
import pytest

from repro.data.datasets import PREDICTION_SIZES, TAXONOMY_SIZES, load_dataset, load_query_dataset
from repro.data.schema import InteractionLog, dataset_statistics


class TestPresets:
    def test_all_prediction_sizes_declared(self):
        assert {"tiny", "small", "default"} <= set(PREDICTION_SIZES)
        assert {"tiny", "small", "default"} <= set(TAXONOMY_SIZES)

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError):
            load_dataset("taobao-production", size="tiny")

    def test_unknown_size_raises(self):
        with pytest.raises(ValueError):
            load_dataset("mini-taobao1", size="huge")
        with pytest.raises(ValueError):
            load_query_dataset(size="huge")

    def test_unknown_query_name(self):
        with pytest.raises(ValueError):
            load_query_dataset(name="mini-taobao4")

    def test_shared_world_between_1_and_2(self, tiny_dataset, tiny_cold_dataset):
        # Same seed -> the same latent world underlies both datasets.
        assert tiny_dataset.ground_truth.tree.names == tiny_cold_dataset.ground_truth.tree.names

    def test_statistics_row(self, tiny_dataset):
        stats = dataset_statistics(tiny_dataset)
        assert stats["users"] > 0
        assert stats["items"] > 0
        assert stats["clicks"] >= stats["users"]  # everyone clicks at least twice
        assert 0 < stats["density"] < 1

    def test_cold_statistics_are_scoped(self, tiny_dataset, tiny_cold_dataset):
        dense = dataset_statistics(tiny_dataset)
        cold = dataset_statistics(tiny_cold_dataset)
        assert cold["items"] < dense["items"]
        assert cold["clicks"] < dense["clicks"]


class TestInteractionLog:
    def test_filtering(self):
        log = InteractionLog(
            users=np.array([0, 1, 2]),
            items=np.array([5, 6, 5]),
            days=np.array([0, 1, 1]),
            clicks=np.array([1, 2, 1]),
            purchases=np.array([0, 1, 0]),
        )
        assert len(log.filter_days({1})) == 2
        assert len(log.filter_items(np.array([5]))) == 2

    def test_filter_days_set_order_insensitive(self):
        # filter_days sorts its day set before np.isin, so set/list/reversed
        # inputs must select bitwise-identical rows (determinism guard).
        rng = np.random.default_rng(0)
        n = 200
        log = InteractionLog(
            users=rng.integers(0, 20, size=n),
            items=rng.integers(0, 30, size=n),
            days=rng.integers(0, 10, size=n),
            clicks=rng.integers(1, 5, size=n),
            purchases=rng.integers(0, 2, size=n),
        )
        wanted = [7, 1, 4]
        as_set = log.filter_days(set(wanted))
        as_list = log.filter_days(wanted)
        as_reversed = log.filter_days(list(reversed(wanted)))
        for other in (as_list, as_reversed):
            assert np.array_equal(as_set.users, other.users)
            assert np.array_equal(as_set.items, other.items)
            assert np.array_equal(as_set.days, other.days)
        assert set(np.unique(as_set.days)) <= set(wanted)

    def test_column_validation(self):
        with pytest.raises(ValueError):
            InteractionLog(
                users=np.array([0]),
                items=np.array([0, 1]),
                days=np.array([0]),
                clicks=np.array([1]),
                purchases=np.array([0]),
            )

    def test_zero_clicks_rejected(self):
        with pytest.raises(ValueError):
            InteractionLog(
                users=np.array([0]),
                items=np.array([0]),
                days=np.array([0]),
                clicks=np.array([0]),
                purchases=np.array([0]),
            )

    def test_to_graph_aggregates_clicks(self):
        log = InteractionLog(
            users=np.array([0, 0]),
            items=np.array([1, 1]),
            days=np.array([0, 1]),
            clicks=np.array([2, 3]),
            purchases=np.array([0, 1]),
        )
        graph = log.to_graph(2, 2)
        assert graph.edge_weight(0, 1) == 5.0
