"""The synthetic Taobao world: structure, leakage, oracle sanity."""

import numpy as np
import pytest

from repro.data.synthetic import GroundTruth, TaobaoGenerator, WorldConfig


@pytest.fixture(scope="module")
def generator():
    return TaobaoGenerator(
        WorldConfig(num_users=80, num_items=60, branching=(3, 2), interactions_per_user=12.0),
        seed=1,
    )


class TestWorldConfig:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            WorldConfig(num_users=1)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            WorldConfig(affinity_decay=1.5)

    def test_invalid_days(self):
        with pytest.raises(ValueError):
            WorldConfig(num_days=1)


class TestGroundTruth:
    def test_affinity_is_row_stochastic(self, generator):
        aff = generator.truth.user_affinity
        assert np.allclose(aff.sum(axis=1), 1.0)
        assert aff.min() >= 0

    def test_home_leaf_has_max_affinity_mostly(self, generator):
        truth = generator.truth
        argmax = truth.user_affinity.argmax(axis=1)
        agreement = np.mean(argmax == truth.user_home_leaf_index)
        assert agreement > 0.5  # taste noise flips some, not most

    def test_item_leaves_valid(self, generator):
        truth = generator.truth
        assert set(truth.item_leaf) <= set(truth.tree.leaves.tolist())
        assert np.array_equal(
            truth.tree.leaves[truth.item_leaf_index], truth.item_leaf
        )

    def test_probabilities_in_range(self, generator):
        truth = generator.truth
        for user in (0, 5):
            for item in (0, 7):
                assert 0.0 <= truth.click_probability(user, item) <= 1.0
                assert 0.0 <= truth.purchase_probability(user, item) <= 1.0

    def test_home_item_clicks_better_than_foreign(self, generator):
        truth = generator.truth
        clicks_home, clicks_far = [], []
        for user in range(30):
            home_leaf_idx = truth.user_home_leaf_index[user]
            home_items = np.flatnonzero(truth.item_leaf_index == home_leaf_idx)
            far_idx = int(np.argmin(truth.user_affinity[user]))
            far_items = np.flatnonzero(truth.item_leaf_index == far_idx)
            if len(home_items) and len(far_items):
                clicks_home.append(truth.click_probability(user, int(home_items[0])))
                clicks_far.append(truth.click_probability(user, int(far_items[0])))
        assert np.mean(clicks_home) > np.mean(clicks_far)

    def test_new_item_fraction(self, generator):
        truth = generator.truth
        share = truth.new_items.mean()
        assert 0.15 < share < 0.45  # config default 0.3

    def test_item_label_at_depth(self, generator):
        truth = generator.truth
        labels1 = truth.item_label_at_depth(1)
        assert np.all(truth.tree.depth[labels1] == 1)


class TestDatasets:
    def test_no_test_day_leakage_in_graph(self, generator):
        ds = generator.build_dataset()
        test_day = ds.metadata["test_day"]
        train_log = ds.log.filter_days(set(range(test_day)))
        # Every graph edge must exist in the train-period log.
        log_pairs = set(zip(train_log.users.tolist(), train_log.items.tolist()))
        assert ds.graph.edge_set() <= log_pairs

    def test_click_weights_match_log(self, generator):
        ds = generator.build_dataset()
        test_day = ds.metadata["test_day"]
        train_log = ds.log.filter_days(set(range(test_day)))
        assert ds.graph.total_weight == pytest.approx(float(train_log.clicks.sum()))

    def test_labels_are_binary(self, generator):
        ds = generator.build_dataset()
        assert set(np.unique(ds.train.labels)) <= {0, 1}
        assert set(np.unique(ds.test.labels)) <= {0, 1}

    def test_feature_tables_aligned(self, generator):
        ds = generator.build_dataset()
        assert ds.user_profiles.shape[0] == ds.num_users
        assert ds.item_stats.shape[0] == ds.num_items
        assert ds.graph.user_features.shape[0] == ds.num_users
        assert ds.graph.item_features.shape[0] == ds.num_items

    def test_cold_start_samples_only_new_items(self, generator):
        cold = generator.build_cold_start_dataset()
        new_ids = set(cold.metadata["new_items"])
        assert set(cold.train.items.tolist()) <= new_ids
        assert set(cold.test.items.tolist()) <= new_ids

    def test_cold_start_graph_keeps_all_items(self, generator):
        cold = generator.build_cold_start_dataset()
        assert cold.graph.num_items == generator.config.num_items

    def test_cold_start_sparser_positives(self, generator):
        dense = generator.build_dataset()
        cold = generator.build_cold_start_dataset()
        dense_rate = dense.train.num_positive / len(dense.train)
        cold_rate = cold.train.num_positive / max(len(cold.train), 1)
        assert cold_rate < dense_rate

    def test_reproducible_across_instances(self):
        cfg = WorldConfig(num_users=40, num_items=30, branching=(2, 2))
        a = TaobaoGenerator(cfg, seed=9).build_dataset()
        b = TaobaoGenerator(cfg, seed=9).build_dataset()
        assert a.graph.edge_set() == b.graph.edge_set()
        assert np.array_equal(a.train.labels, b.train.labels)

    def test_different_seeds_differ(self):
        cfg = WorldConfig(num_users=40, num_items=30, branching=(2, 2))
        a = TaobaoGenerator(cfg, seed=1).build_dataset()
        b = TaobaoGenerator(cfg, seed=2).build_dataset()
        assert a.graph.edge_set() != b.graph.edge_set()
